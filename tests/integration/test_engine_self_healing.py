"""Integration: the explore engine survives worker death, verdicts intact.

Worker death is injected deterministically through the token protocol of
:mod:`repro.faults.chaos`: each token file licenses exactly one pool
worker to ``os._exit`` mid-batch.  The engine must (a) recover a single
death via pool rebuild + batch resubmission, and (b) degrade to serial
in-process expansion under persistent death — in both cases producing
verdicts, counts, and witness schedules bit-identical to a healthy run.
"""

import dataclasses

import pytest

from repro import OneShotSetAgreement, System
from repro.explore import explore_safety
from repro.faults.chaos import arm_worker_kills


def make_system(components=None):
    kwargs = dict(n=3, m=1, k=1)
    if components is not None:
        kwargs["components"] = components
    return System(
        OneShotSetAgreement(**kwargs), workloads=[["a"], ["b"], ["c"]]
    )


def verdict_record(result):
    """An ExplorationResult minus the self-healing history fields."""
    record = dataclasses.asdict(result)
    record.pop("worker_retries")
    record.pop("degraded")
    return record


class TestSelfHealing:
    def test_single_worker_death_recovers_identically(self, tmp_path):
        healthy = explore_safety(make_system(), 1, max_configs=2_000,
                                 workers=2, batch_size=16)
        chaos = arm_worker_kills(str(tmp_path / "kills"), 1)
        healed = explore_safety(
            make_system(), 1, max_configs=2_000, workers=2, batch_size=16,
            batch_timeout=10.0, max_retries=3, chaos=chaos,
        )
        assert healed.worker_retries >= 1
        assert not healed.degraded
        assert verdict_record(healed) == verdict_record(healthy)

    def test_persistent_death_degrades_to_serial_identically(self, tmp_path):
        healthy = explore_safety(make_system(), 1, max_configs=2_000,
                                 workers=2, batch_size=16)
        chaos = arm_worker_kills(str(tmp_path / "kills"), 64)
        degraded = explore_safety(
            make_system(), 1, max_configs=2_000, workers=2, batch_size=16,
            batch_timeout=2.0, max_retries=2, chaos=chaos,
        )
        assert degraded.degraded
        assert degraded.worker_retries == 3  # max_retries + the final failure
        assert verdict_record(degraded) == verdict_record(healthy)

    def test_violation_witness_survives_degradation(self, tmp_path):
        """Degradation must not change *what* is found: an under-provisioned
        instance yields the same certified witness schedule."""
        healthy = explore_safety(make_system(components=2), 1,
                                 max_configs=4_000, workers=2, batch_size=16)
        assert healthy.safety_violations
        chaos = arm_worker_kills(str(tmp_path / "kills"), 64)
        degraded = explore_safety(
            make_system(components=2), 1, max_configs=4_000, workers=2,
            batch_size=16, batch_timeout=2.0, max_retries=1, chaos=chaos,
        )
        assert degraded.degraded
        assert verdict_record(degraded) == verdict_record(healthy)

    def test_healthy_run_with_timeout_reports_no_healing(self):
        result = explore_safety(make_system(), 1, max_configs=2_000,
                                workers=2, batch_size=16, batch_timeout=60.0)
        assert result.worker_retries == 0
        assert not result.degraded

    def test_bad_healing_parameters_rejected(self):
        with pytest.raises(ValueError):
            explore_safety(make_system(), 1, max_configs=100,
                           batch_timeout=0.0)
        with pytest.raises(ValueError):
            explore_safety(make_system(), 1, max_configs=100, max_retries=-1)
