"""Integration: progress guarantees of the snapshot substrates differ.

The double-collect snapshot is non-blocking — a scanner starves under a
perpetual writer — while the wait-free substrate's helping bounds every
scan.  This contrast is the reason Figure 5 has its second thread (see
benchmark E6) and the reason the wait-free substrate exists; here it is
demonstrated directly at the object level.
"""

import pytest

from repro import System, run
from repro._types import Params
from repro.memory.layout import ImplementedBinding, MemoryLayout
from repro.memory.ops import ScanOp, UpdateOp
from repro.objects import DoubleCollectSnapshot, WaitFreeSnapshot
from repro.sched import CyclicScheduler, phases
from repro.spec.linearizability import SnapshotScript

COMPONENTS = 2


def starving_system(impl_cls, writer_ops=60):
    """p0 scans once; p1 performs a long stream of updates."""
    impl = impl_cls(Params(components=COMPONENTS, n=2))
    banks = impl.bank_specs(prefix="A")
    layout = MemoryLayout(
        tuple(banks),
        {"A": ImplementedBinding(impl, tuple(b.name for b in banks))},
    )
    scripts = [
        [ScanOp("A")],
        [UpdateOp("A", i % COMPONENTS, f"w{i}") for i in range(writer_ops)],
    ]
    protocol = SnapshotScript(scripts, components=COMPONENTS)
    return System(protocol, workloads=[[0], [0]], layout=layout)


def starvation_schedule():
    """One scanner read per writer update completion: collects never match."""
    return CyclicScheduler(phases([1, 1], [0]))


class TestNonBlockingStarves:
    def test_double_collect_scan_starves_under_perpetual_writer(self):
        # Enough writer operations to keep writes flowing past the budget.
        system = starving_system(DoubleCollectSnapshot, writer_ops=200)
        execution = run(system, starvation_schedule(), max_steps=150,
                        on_limit="return")
        # The writer interleaves a completed update into every collect, so
        # the scanner never returns.
        assert not system.decided_all(execution.config, [0])

    def test_double_collect_scan_completes_once_writer_stops(self):
        system = starving_system(DoubleCollectSnapshot, writer_ops=5)
        execution = run(system, starvation_schedule(), max_steps=300)
        assert system.decided_all(execution.config, [0])


class TestWaitFreeHelps:
    def test_wait_free_scan_completes_despite_perpetual_writer(self):
        from repro.runtime.events import DecideEvent, MemoryEvent

        system = starving_system(WaitFreeSnapshot, writer_ops=400)
        execution = run(system, starvation_schedule(), max_steps=600,
                        on_limit="return")
        assert system.decided_all(execution.config, [0]), (
            "the helping mechanism should have bounded the scan"
        )
        # And it completed *while* the writer was still writing — i.e. via
        # borrowing, not because the writer went quiet.
        decide_index = next(
            i for i, e in enumerate(execution.events)
            if isinstance(e, DecideEvent) and e.pid == 0
        )
        later_writes = [
            e for e in execution.events[decide_index:]
            if isinstance(e, MemoryEvent) and e.pid == 1
        ]
        assert later_writes, "writer should still have been active"

    def test_borrowed_view_is_linearizable(self):
        from repro.spec.linearizability import check_linearizable, extract_history

        system = starving_system(WaitFreeSnapshot, writer_ops=10)
        scripts = system.automaton.scripts
        execution = run(system, starvation_schedule(), max_steps=2_000)
        history = extract_history(execution, scripts)
        assert check_linearizable(history, components=COMPONENTS) is not None
