"""Integration: every example script runs to completion.

The examples are the library's public face; each must execute end to end
with a zero exit status (they contain their own assertions).  Run as
subprocesses so import-time behaviour and ``__main__`` guards are covered.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3  # the deliverable: at least three examples
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
