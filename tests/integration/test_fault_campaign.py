"""Integration: chaos campaigns exhibit the paper's reliability boundary.

Positive control — process crashes are *inside* the fault model
m-obstruction-freedom quantifies over, so crash-only campaigns must report
zero violations for every algorithm.  Negative control — register
corruption is *outside* it, and each algorithm family must produce at
least one replay-certified Validity or k-Agreement violation under the
corruption family.  Together the two controls show the fault injector
measures the model's boundary rather than its own bugs.
"""

import pytest

from repro import (
    AnonymousRepeatedSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
    replay,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.faults import build_family, run_campaign, run_trial
from repro.faults.inject import faulty_system
from repro.faults.plans import FaultPlan, ProcessCrash
from repro.spec import check_safety

FAMILIES = [
    ("oneshot", lambda n, m, k: System(
        OneShotSetAgreement(n=n, m=m, k=k), workloads=distinct_inputs(n))),
    ("repeated", lambda n, m, k: System(
        RepeatedSetAgreement(n=n, m=m, k=k),
        workloads=distinct_inputs(n, instances=2))),
    ("anonymous", lambda n, m, k: System(
        AnonymousRepeatedSetAgreement(n=n, m=m, k=k),
        workloads=distinct_inputs(n, instances=2))),
    ("anonymous-oneshot", lambda n, m, k: System(
        AnonymousOneShotSetAgreement(n=n, m=m, k=k),
        workloads=distinct_inputs(n))),
]


@pytest.mark.parametrize("name,factory", FAMILIES)
def test_positive_control_crash_plans_preserve_safety(name, factory):
    system = factory(4, 2, 2)
    plans = build_family("crashes", system, trials=10, seed=17)
    report = run_campaign(system, plans, family="crashes", k=2, budget=5_000)
    assert report.crash_safety_holds(), report.summary()
    assert not report.certified_violations
    # Crash-stop runs must actually conclude, not stall into inconclusive.
    assert report.outcomes("safe"), report.summary()


@pytest.mark.parametrize("name,factory", FAMILIES)
def test_negative_control_corruption_certifies_a_violation(name, factory):
    system = factory(4, 2, 2)
    plans = build_family("corruption", system, trials=8, seed=17)
    report = run_campaign(
        system, plans, family="corruption", k=2, budget=4_000, max_retries=2
    )
    violated = report.certified_violations
    assert violated, report.summary()
    for trial in violated:
        assert trial.certified
        assert trial.violations
        assert not trial.plan.crash_only


@pytest.mark.parametrize("name,factory", FAMILIES)
def test_violation_witnesses_replay_independently(name, factory):
    """The schedule stored in a violating trial re-exhibits the violation
    through a *fresh* faulty system and the independent spec checker —
    the campaign's certification is externally checkable."""
    system = factory(4, 2, 2)
    plans = build_family("corruption", system, trials=4, seed=3)
    report = run_campaign(
        system, plans, family="corruption", k=2, budget=4_000, max_retries=1
    )
    assert report.certified_violations
    for trial in report.certified_violations:
        fresh = faulty_system(system, trial.plan)
        execution = replay(fresh, trial.schedule)
        assert check_safety(execution, 2)


def test_inconclusive_trials_retry_with_backed_off_budgets():
    """A crash-only plan under a starvation-tight budget is inconclusive at
    first; the exponential backoff must raise the budget until the trial
    concludes safe."""
    system = System(
        OneShotSetAgreement(n=4, m=2, k=2), workloads=distinct_inputs(4)
    )
    plan = FaultPlan(name="slow", crashes=(ProcessCrash(3, 5),),
                     scheduler_seed=2)
    trial = run_trial(system, plan, k=2, budget=4, max_retries=6, backoff=2.0)
    assert trial.outcome == "safe"
    assert trial.attempts > 1  # the first budget really was too small


def test_inconclusive_sticks_when_budget_stays_too_small():
    system = System(
        OneShotSetAgreement(n=4, m=2, k=2), workloads=distinct_inputs(4)
    )
    plan = FaultPlan(name="slow", crashes=(ProcessCrash(3, 5),),
                     scheduler_seed=2)
    trial = run_trial(system, plan, k=2, budget=1, max_retries=1, backoff=1.0)
    assert trial.outcome == "inconclusive"
    assert trial.attempts == 2


def test_campaign_is_seed_deterministic():
    system = System(
        OneShotSetAgreement(n=3, m=1, k=1), workloads=distinct_inputs(3)
    )
    plans = build_family("corruption", system, trials=6, seed=9)
    first = run_campaign(system, plans, family="corruption", k=1,
                         budget=2_000, max_retries=1)
    second = run_campaign(system, plans, family="corruption", k=1,
                          budget=2_000, max_retries=1)
    assert [(t.plan, t.outcome, t.schedule, t.violations)
            for t in first.trials] == \
        [(t.plan, t.outcome, t.schedule, t.violations)
         for t in second.trials]
