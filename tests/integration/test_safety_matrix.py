"""Integration: every algorithm × substrate × adversary must stay safe.

Safety (Validity + k-Agreement) must hold in *all* executions, so this
matrix runs each protocol under each adversary family on each snapshot
substrate it supports and asserts the checkers on every run.  This is the
suite's broadest net; anything that survives it has been exercised across
every composition boundary in the library.
"""

import pytest

from repro import (
    AnonymousRepeatedSetAgreement,
    BaselineOneShotSetAgreement,
    CrashScheduler,
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    RoundRobinScheduler,
    System,
    WriterPriorityScheduler,
    run,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.agreement.commit_adopt import CommitAdoptConsensus
from repro.bench.workloads import adversarial_inputs, clustered_inputs, distinct_inputs
from repro.objects import implemented_snapshot_layout
from repro.spec import assert_execution_safe

PARAMS = [(4, 1, 2), (4, 2, 3), (5, 2, 2)]


def protocols(n, m, k):
    yield OneShotSetAgreement(n=n, m=m, k=k), 1
    yield RepeatedSetAgreement(n=n, m=m, k=k), 2
    yield AnonymousRepeatedSetAgreement(n=n, m=m, k=k), 2
    yield AnonymousOneShotSetAgreement(n=n, m=m, k=k), 1
    if m == 1 and k <= n - 2:
        yield BaselineOneShotSetAgreement(n=n, k=k), 1


def adversaries(n):
    yield RoundRobinScheduler()
    yield RandomScheduler(seed=17)
    yield WriterPriorityScheduler()
    yield CrashScheduler(crashes={0: 25, 1: 60}, base=RandomScheduler(seed=4))


@pytest.mark.parametrize("n,m,k", PARAMS)
def test_safety_across_protocols_and_adversaries(n, m, k):
    for protocol, instances in protocols(n, m, k):
        for adversary in adversaries(n):
            system = System(
                protocol, workloads=distinct_inputs(n, instances=instances)
            )
            execution = run(
                system, adversary, max_steps=3_000, on_limit="return"
            )
            assert_execution_safe(execution, k=k)


@pytest.mark.parametrize("n,m,k", PARAMS)
@pytest.mark.parametrize("kind", ["double-collect", "wait-free", "swmr"])
def test_safety_on_register_substrates(n, m, k, kind):
    for protocol, instances in protocols(n, m, k):
        if protocol.anonymous and kind != "double-collect":
            continue  # anonymous protocols use the anonymous substrate
        layout = implemented_snapshot_layout(protocol, kind)
        system = System(
            protocol,
            workloads=distinct_inputs(n, instances=instances),
            layout=layout,
        )
        execution = run(
            system, RandomScheduler(seed=23), max_steps=8_000,
            on_limit="return",
        )
        assert_execution_safe(execution, k=k)


@pytest.mark.parametrize("n,m,k", PARAMS)
def test_safety_on_anonymous_substrate(n, m, k):
    for protocol_cls in (AnonymousRepeatedSetAgreement,
                         AnonymousOneShotSetAgreement):
        protocol = protocol_cls(n=n, m=m, k=k)
        layout = implemented_snapshot_layout(protocol, "anonymous-double-collect")
        system = System(protocol, workloads=distinct_inputs(n), layout=layout)
        execution = run(
            system, RandomScheduler(seed=31), max_steps=8_000,
            on_limit="return",
        )
        assert_execution_safe(execution, k=k)


@pytest.mark.parametrize("workload_fn", [clustered_inputs, adversarial_inputs])
def test_safety_on_special_workloads(workload_fn):
    n, m, k = 5, 2, 3
    if workload_fn is clustered_inputs:
        workloads = workload_fn(n, clusters=k + 1, instances=2)
    else:
        workloads = workload_fn(n, instances=2)
    for protocol in (RepeatedSetAgreement(n=n, m=m, k=k),
                     AnonymousRepeatedSetAgreement(n=n, m=m, k=k)):
        system = System(protocol, workloads=workloads)
        execution = run(system, RandomScheduler(seed=8), max_steps=5_000,
                        on_limit="return")
        assert_execution_safe(execution, k=k)


def test_unanimous_inputs_force_unanimous_outputs():
    """With a single proposed value, validity pins every output."""
    n, m, k = 4, 2, 3
    system = System(
        OneShotSetAgreement(n=n, m=m, k=k),
        workloads=[["only"] for _ in range(n)],
    )
    execution = run(system, RandomScheduler(seed=2), max_steps=50_000)
    assert set(execution.instance_outputs(1)) == {"only"}


def test_commit_adopt_in_matrix():
    for adversary in adversaries(3):
        system = System(CommitAdoptConsensus(3), workloads=distinct_inputs(3))
        execution = run(system, adversary, max_steps=3_000, on_limit="return")
        assert_execution_safe(execution, k=1)
