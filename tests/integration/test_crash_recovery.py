"""Integration: kill the process for real, resume, get the same answer.

These tests exercise the durable run journal end to end against actual
process death — ``SIGKILL`` to a whole process group (nothing flushes,
nothing runs ``finally``), ``SIGTERM`` to the CLI (graceful checkpoint,
exit 143), and the ``--deadline`` watchdog (checkpoint, exit 3).  In
every case the resumed run's verdict must be bit-identical to an
uninterrupted run's, excluding only the documented health-history fields.

When ``REPRO_CRASH_ARTIFACTS`` is set (the CI kill-and-resume job sets
it), each test's surviving journal directories are copied there at
teardown so a failure ships the exact on-disk bytes that confused
recovery.
"""

import dataclasses
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro import OneShotSetAgreement, System
from repro.explore import explore_safety
from repro.faults.campaign import run_campaign
from repro.faults.chaos import arm_worker_kills
from repro.faults.plans import corruption_plan_family

#: ExplorationResult fields that describe *how* a run went, not *what* it
#: found; excluded from bit-identity comparisons (see repro.explore.checker).
EXPLORE_HISTORY_FIELDS = ("worker_retries", "degraded", "interrupted",
                          "recovery")
#: Same for FaultReport (see repro.faults.campaign).
CAMPAIGN_HISTORY_FIELDS = ("elapsed_seconds", "interrupted", "recovery")


def make_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def verdict_record(result, history_fields=EXPLORE_HISTORY_FIELDS):
    record = dataclasses.asdict(result)
    for name in history_fields:
        record.pop(name)
    return record


def wait_for_journal_bytes(journal_dir, *, timeout=60.0):
    """Block until some run journal under *journal_dir* has a record."""
    deadline = time.monotonic() + timeout
    journal_dir = str(journal_dir)
    while time.monotonic() < deadline:
        for root, _dirs, files in os.walk(journal_dir):
            for name in files:
                if name == "journal.bin":
                    path = os.path.join(root, name)
                    try:
                        if os.path.getsize(path) > 9:  # header + a record
                            return path
                    except OSError:
                        pass
        time.sleep(0.005)
    raise AssertionError(f"no journal record appeared under {journal_dir}")


@pytest.fixture(autouse=True)
def ship_artifacts(request, tmp_path):
    """Copy surviving journals to $REPRO_CRASH_ARTIFACTS for CI upload."""
    yield
    target = os.environ.get("REPRO_CRASH_ARTIFACTS")
    if not target:
        return
    dest = os.path.join(target, request.node.name)
    for root, dirs, _files in os.walk(str(tmp_path)):
        for name in dirs:
            if name.endswith(".journal"):
                source = os.path.join(root, name)
                shutil.copytree(
                    source, os.path.join(dest, name), dirs_exist_ok=True
                )


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


EXPLORE_SCRIPT = """\
import sys
from repro import OneShotSetAgreement, System
from repro.explore import explore_safety

system = System(
    OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
)
explore_safety(
    system, 2, max_configs=6000, workers=2, batch_size=16,
    batch_timeout=30.0, journal_dir=sys.argv[1], checkpoint_every=4,
)
"""

CAMPAIGN_SCRIPT = """\
import sys
from repro import OneShotSetAgreement, System
from repro.faults.campaign import run_campaign
from repro.faults.plans import corruption_plan_family

system = System(
    OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
)
plans = corruption_plan_family(system, trials=8, seed=11)
run_campaign(
    system, plans, family="corruption", budget=4000,
    journal_dir=sys.argv[1], checkpoint_every=2,
)
"""


class TestSigkillRecovery:
    def test_explore_killpg_then_resume_is_bit_identical(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        proc = subprocess.Popen(
            [sys.executable, "-c", EXPLORE_SCRIPT, journal_dir],
            env=subprocess_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            wait_for_journal_bytes(journal_dir)
        finally:
            # SIGKILL the whole group: the coordinator AND its pool
            # workers die with no flush, no atexit, no finally
            os.killpg(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=60) == -signal.SIGKILL

        resumed = explore_safety(
            make_system(), 2, max_configs=6000, workers=2, batch_size=16,
            batch_timeout=30.0, journal_dir=journal_dir, checkpoint_every=4,
        )
        assert resumed.recovery is not None
        assert (resumed.recovery.checkpoint_loaded
                or resumed.recovery.records_recovered > 0)

        baseline = explore_safety(
            make_system(), 2, max_configs=6000, workers=2, batch_size=16,
            batch_timeout=30.0,
        )
        assert verdict_record(resumed) == verdict_record(baseline)

    def test_campaign_killpg_then_resume_is_bit_identical(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        proc = subprocess.Popen(
            [sys.executable, "-c", CAMPAIGN_SCRIPT, journal_dir],
            env=subprocess_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            wait_for_journal_bytes(journal_dir)
        finally:
            os.killpg(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=60) == -signal.SIGKILL

        system = make_system()
        plans = corruption_plan_family(system, trials=8, seed=11)
        resumed = run_campaign(
            system, plans, family="corruption", budget=4000,
            journal_dir=journal_dir, checkpoint_every=2,
        )
        assert resumed.recovery is not None
        assert (resumed.recovery.checkpoint_loaded
                or resumed.recovery.records_recovered > 0)

        baseline = run_campaign(
            system, plans, family="corruption", budget=4000,
        )
        assert (verdict_record(resumed, CAMPAIGN_HISTORY_FIELDS)
                == verdict_record(baseline, CAMPAIGN_HISTORY_FIELDS))


class TestCliSignals:
    CLI = ["explore", "--n", "3", "--m", "1", "--k", "2",
           "--max-configs", "6000", "--batch-timeout", "30"]

    def run_cli(self, extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", *self.CLI, *extra],
            env=subprocess_env(), capture_output=True, text=True,
            timeout=300,
        )

    def explored_line(self, output):
        lines = [l for l in output.splitlines() if l.startswith("explored")]
        assert lines, f"no explored summary in: {output!r}"
        return lines[0]

    def test_sigterm_checkpoints_then_resume_matches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CLI,
             "--resume", "--cache-dir", cache_dir, "--checkpoint-every", "4"],
            env=subprocess_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        wait_for_journal_bytes(cache_dir)
        proc.send_signal(signal.SIGTERM)
        out, _err = proc.communicate(timeout=120)
        assert proc.returncode == 143
        assert "checkpointed on sigterm" in out

        resumed = self.run_cli(
            ["--resume", "--cache-dir", cache_dir, "--checkpoint-every", "4"]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "recovery" in resumed.stdout  # the salvage was reported

        plain = self.run_cli([])
        assert plain.returncode == 0, plain.stderr
        assert (self.explored_line(resumed.stdout)
                == self.explored_line(plain.stdout))

    def test_deadline_exits_three_then_resume_completes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        flags = ["--resume", "--cache-dir", cache_dir,
                 "--checkpoint-every", "4"]
        interrupted = self.run_cli([*flags, "--deadline", "0.2"])
        assert interrupted.returncode == 3, interrupted.stdout
        assert "checkpointed on deadline" in interrupted.stdout

        resumed = self.run_cli(flags)
        assert resumed.returncode == 0, resumed.stderr

        plain = self.run_cli([])
        assert plain.returncode == 0, plain.stderr
        assert (self.explored_line(resumed.stdout)
                == self.explored_line(plain.stdout))


class TestChaosWithJournal:
    def test_worker_kills_plus_journal_still_bit_identical(self, tmp_path):
        """The chaos and durability subsystems compose: a journaled run
        that loses (and heals) a pool worker mid-flight produces the same
        verdict as a healthy run, and its finished checkpoint serves the
        next call."""
        healthy = explore_safety(
            make_system(), 2, max_configs=2_000, workers=2, batch_size=16,
        )
        journal_dir = str(tmp_path / "journal")
        chaos = arm_worker_kills(str(tmp_path / "kills"), 1)
        healed = explore_safety(
            make_system(), 2, max_configs=2_000, workers=2, batch_size=16,
            batch_timeout=10.0, max_retries=3, chaos=chaos,
            journal_dir=journal_dir, checkpoint_every=4,
        )
        assert healed.worker_retries >= 1
        assert verdict_record(healed) == verdict_record(healthy)

        replayed = explore_safety(
            make_system(), 2, max_configs=2_000, workers=2, batch_size=16,
            journal_dir=journal_dir, checkpoint_every=4,
        )
        assert replayed.recovery is not None
        assert replayed.recovery.checkpoint_loaded
        assert verdict_record(replayed) == verdict_record(healthy)
