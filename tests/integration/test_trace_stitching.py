"""Cross-process trace stitching: lanes, parent links, and identity.

The tentpole guarantees under test:

* a ``workers=N`` exploration produces ONE trace with a lane per chunk
  worker, every worker span parented to the coordinating batch span on
  the main lane — stitched from picklable records that ride the
  ``MetricsSnapshot`` merge;
* trace and span ids are deterministic (pure functions of the run's
  attrs and work coordinates), so they live in the *deterministic*
  projection and repeated runs golden-compare byte-identically;
* worker kills / batch retries never double-count span durations or
  break ``seq`` contiguity — discarded attempts discard their partial
  snapshots atomically;
* tracing and ``--profile`` are observability only: verdicts (and serve
  verdict fingerprints) are bit-identical with them on or off.
"""

import dataclasses
import json

import pytest

from repro import OneShotSetAgreement, System, telemetry
from repro.explore import explore_safety
from repro.faults.chaos import arm_worker_kills
from repro.serve.protocol import VerifyJob
from repro.serve.server import ReproServer
from repro.telemetry.profile import SpanProfiler
from repro.telemetry.schema import (
    SCHEMA_VERSION, normalized_stream, validate_stream,
)
from repro.telemetry.sinks import EVENTS_FILE, TRACE_FILE, JsonlSink


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def make_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def traced_explore(directory, **kwargs):
    """One telemetered exploration writing stream + trace to *directory*."""
    session = telemetry.start(
        command="explore", mode="jsonl", sinks=[JsonlSink(str(directory))],
        attrs={"schema": SCHEMA_VERSION, "n": 3, "m": 1, "k": 2},
    )
    try:
        result = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32, **kwargs
        )
    finally:
        session.close(exit_code=0, verdict="ok")
    return result


def load_events(directory):
    lines = (directory / EVENTS_FILE).read_text().splitlines()
    return [json.loads(line) for line in lines]


def load_trace(directory):
    return json.loads((directory / TRACE_FILE).read_text())


class TestMultiLaneStitching:
    def test_worker_spans_stitch_into_main_trace(self, tmp_path):
        run = tmp_path / "run"
        traced_explore(run, workers=2)
        events = load_events(run)
        assert validate_stream(run) == []
        chunk_spans = [
            e for e in events
            if e["type"] == "span" and e["name"] == "explore.chunk"
        ]
        assert chunk_spans, "worker chunk spans must ship back to the stream"
        batch_ids = {
            e["attrs"]["span"] for e in events
            if e["type"] == "span" and e["name"] == "explore.batch"
        }
        lanes = set()
        for span in chunk_spans:
            # every chunk span is parented to a real batch span on main
            assert span["attrs"]["parent"] in batch_ids
            assert span["attrs"]["lane"].startswith("worker-")
            assert span["attrs"]["span"].startswith("w")
            lanes.add(span["attrs"]["lane"])
        assert len(lanes) >= 2, "workers=2 must produce at least two lanes"

    def test_worker_spans_carry_worker_pids(self, tmp_path):
        run = tmp_path / "run"
        traced_explore(run, workers=2)
        events = load_events(run)
        main_pid = [e for e in events if e["type"] == "run_start"][0]["vol"][
            "pid"
        ]
        chunk_pids = {
            e["vol"]["pid"] for e in events
            if e["type"] == "span" and e["name"] == "explore.chunk"
        }
        assert chunk_pids and main_pid not in chunk_pids

    def test_chrome_trace_is_one_file_with_lane_tracks(self, tmp_path):
        run = tmp_path / "run"
        traced_explore(run, workers=2)
        trace = load_trace(run)
        lane_names = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "main" in lane_names
        assert any(name.startswith("worker-") for name in lane_names)
        # main is always synthetic pid 0, the top track in Perfetto
        main_meta = [
            e for e in trace["traceEvents"]
            if e["ph"] == "M" and e["args"]["name"] == "main"
        ]
        assert main_meta[0]["pid"] == 0
        # cross-lane parent links render as flow arrow pairs
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) >= 1
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_trace_ids_are_deterministic_and_golden(self, tmp_path):
        traced_explore(tmp_path / "first", workers=2)
        telemetry.reset()
        traced_explore(tmp_path / "second", workers=2)
        # span ids (trace identity) live in attrs => the deterministic
        # projection — byte-identical across repeated runs
        assert normalized_stream(tmp_path / "first") == normalized_stream(
            tmp_path / "second"
        )
        first = load_trace(tmp_path / "first")
        second = load_trace(tmp_path / "second")
        assert first["otherData"]["trace"] == second["otherData"]["trace"]


class TestRetryDiscardsSpans:
    def test_killed_worker_spans_die_with_the_discarded_batch(
        self, tmp_path
    ):
        run = tmp_path / "run"
        chaos = arm_worker_kills(str(tmp_path / "kills"), 1)
        result = traced_explore(
            run, workers=2, batch_timeout=10.0, max_retries=3, chaos=chaos,
        )
        assert result.worker_retries >= 1
        events = load_events(run)
        # seq stays contiguous through the pool rebuild
        assert validate_stream(run) == []
        assert [e["seq"] for e in events] == list(range(len(events)))
        # a retried batch re-submits the same chunk coordinates; the
        # discarded attempt's partial snapshots must not double-emit
        chunk_ids = [
            e["attrs"]["span"] for e in events
            if e["type"] == "span" and e["name"] == "explore.chunk"
        ]
        assert len(chunk_ids) == len(set(chunk_ids)), (
            "retried chunks double-counted their span records"
        )

    def test_killed_run_still_normalizes_identically(self, tmp_path):
        healthy = tmp_path / "healthy"
        traced_explore(healthy, workers=2)
        telemetry.reset()
        healed = tmp_path / "healed"
        chaos = arm_worker_kills(str(tmp_path / "kills"), 1)
        traced_explore(
            healed, workers=2, batch_timeout=10.0, max_retries=3,
            chaos=chaos,
        )
        # retry counters differ (they are volatile history), but the
        # deterministic span/event sequence does not
        healthy_spans = [
            (e["name"], e["attrs"].get("span"), e["attrs"].get("lane"))
            for e in load_events(healthy) if e["type"] == "span"
        ]
        healed_spans = [
            (e["name"], e["attrs"].get("span"), e["attrs"].get("lane"))
            for e in load_events(healed) if e["type"] == "span"
        ]
        assert healed_spans == healthy_spans


class TestObservabilityIdentity:
    def _verdict(self, result):
        record = dataclasses.asdict(result)
        record.pop("worker_retries")
        record.pop("degraded")
        return record

    def test_explore_verdict_identical_with_profiler_running(self):
        baseline = explore_safety(make_system(), 2, max_configs=800,
                                  batch_size=32, workers=2)
        profiler = SpanProfiler(interval=0.001)
        profiler.start()
        profiled = explore_safety(make_system(), 2, max_configs=800,
                                  batch_size=32, workers=2)
        profiler.stop()
        assert self._verdict(profiled) == self._verdict(baseline)

    def test_serve_fingerprints_identical_with_tracing_on(self, tmp_path):
        job = VerifyJob(mode="run", max_steps=500)

        def run_once(data_dir):
            server = ReproServer(data_dir=data_dir, serial=True,
                                 queue_capacity=4)
            server.start()
            import threading

            codes = []
            thread = threading.Thread(
                target=lambda: codes.append(server.serve_forever()),
                daemon=True,
            )
            thread.start()
            cold = server.handle_request(
                {"op": "verify", "job": job.descriptor()}
            )
            hit = server.handle_request(
                {"op": "verify", "job": job.descriptor()}
            )
            server.handle_request({"op": "shutdown"})
            thread.join(timeout=30)
            return cold, hit

        # untraced baseline
        cold_off, hit_off = run_once(tmp_path / "off")
        # traced: a jsonl session is active for the daemon's lifetime
        session = telemetry.start(
            command="serve", mode="jsonl",
            sinks=[JsonlSink(str(tmp_path / "stream"))],
            attrs={"schema": SCHEMA_VERSION},
        )
        try:
            cold_on, hit_on = run_once(tmp_path / "on")
        finally:
            session.close(exit_code=0, verdict="ok")
        assert cold_on["fingerprint"] == cold_off["fingerprint"]
        assert hit_on["fingerprint"] == hit_off["fingerprint"]
        assert cold_on["verdict"] == cold_off["verdict"]
        # and the traced daemon wrote schema-valid telemetry
        assert validate_stream(tmp_path / "stream") == []
