"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro import (
    OneShotSetAgreement,
    RepeatedSetAgreement,
    AnonymousRepeatedSetAgreement,
    System,
)


def one_shot_system(n: int, m: int, k: int, *, components=None) -> System:
    """One-shot system with distinct inputs ``v0..v{n-1}``."""
    protocol = OneShotSetAgreement(n=n, m=m, k=k, components=components)
    return System(protocol, workloads=[[f"v{i}"] for i in range(n)])


def repeated_system(
    n: int, m: int, k: int, *, instances: int = 2, components=None
) -> System:
    """Repeated system with globally distinct inputs ``p{i}c{t}``."""
    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=components)
    workloads = [[f"p{i}c{t}" for t in range(instances)] for i in range(n)]
    return System(protocol, workloads=workloads)


def anonymous_system(
    n: int, m: int, k: int, *, instances: int = 2
) -> System:
    protocol = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
    workloads = [[f"p{i}c{t}" for t in range(instances)] for i in range(n)]
    return System(protocol, workloads=workloads)


def small_parameter_grid(max_n: int = 5):
    """All valid (n, m, k) with 1 <= m <= k < n <= max_n."""
    grid = []
    for n in range(2, max_n + 1):
        for k in range(1, n):
            for m in range(1, k + 1):
                grid.append((n, m, k))
    return grid


@pytest.fixture
def grid():
    return small_parameter_grid()
