"""Unit tests for the serve wire vocabulary (jobs, keys, fingerprints)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    VerifyJob,
    canonical_json,
    verdict_fingerprint,
)


class TestCanonicalJson:
    def test_sorted_tight_ascii(self):
        blob = canonical_json({"b": 1, "a": [True, None, "x"]})
        assert blob == b'{"a":[true,null,"x"],"b":1}'

    def test_key_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )


class TestVerifyJob:
    def test_wire_round_trip(self):
        job = VerifyJob(mode="faults", n=4, fault_family="corruption",
                        trials=9, seed=5)
        again = VerifyJob.from_wire(job.descriptor())
        assert again == job
        assert again.key == job.key

    def test_key_is_stable_across_processes(self):
        """The job key is a pure function of the descriptor bytes — pin
        one value so accidental key-schema drift (which would orphan
        every memoized verdict) fails loudly."""
        job = VerifyJob()  # all defaults
        assert job.key == VerifyJob.from_wire({}).key
        blob = canonical_json(job.descriptor())
        import hashlib

        assert job.key == hashlib.blake2b(blob, digest_size=16).hexdigest()

    def test_every_field_participates_in_the_key(self):
        base = VerifyJob()
        seen = {base.key}
        variants = [
            VerifyJob(n=4), VerifyJob(m=2, n=4), VerifyJob(k=2, n=4),
            VerifyJob(protocol="repeated"), VerifyJob(mode="run"),
            VerifyJob(backend="packed"), VerifyJob(max_configs=99),
            VerifyJob(reduction="local-first"),
            VerifyJob(canonicalize=True), VerifyJob(scheduler="random"),
            VerifyJob(seed=2), VerifyJob(max_steps=7),
            VerifyJob(fault_family="corruption"), VerifyJob(trials=2),
            VerifyJob(budget=3),
        ]
        for variant in variants:
            assert variant.key not in seen, variant
            seen.add(variant.key)

    def test_version_participates_in_the_key(self):
        descriptor = VerifyJob().descriptor()
        assert descriptor["version"] == PROTOCOL_VERSION
        assert b'"version"' in canonical_json(descriptor)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job field"):
            VerifyJob.from_wire({"n": 3, "max_confgs": 10})

    def test_version_skew_rejected(self):
        with pytest.raises(ConfigurationError, match="version"):
            VerifyJob.from_wire({"version": PROTOCOL_VERSION + 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            VerifyJob.from_wire([1, 2, 3])

    @pytest.mark.parametrize("field,value", [
        ("protocol", "nope"), ("mode", "nope"), ("backend", "nope"),
        ("scheduler", "nope"), ("fault_family", "nope"),
        ("reduction", "nope"), ("n", 0), ("k", -1), ("trials", 0),
        ("seed", "one"), ("max_configs", 1.5),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            VerifyJob.from_wire({field: value})

    def test_m_cannot_exceed_n(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            VerifyJob.from_wire({"n": 2, "m": 3})

    def test_describe_names_mode_and_key(self):
        job = VerifyJob(mode="run", n=5)
        assert "run[" in job.describe()
        assert job.key[:12] in job.describe()


class TestVerdictFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = verdict_fingerprint({"outcome": "ok", "data": {"x": 1}})
        b = verdict_fingerprint({"data": {"x": 1}, "outcome": "ok"})
        assert a == b
        assert len(a) == 32  # hex blake2b-128

    def test_sensitive_to_content(self):
        a = verdict_fingerprint({"outcome": "ok"})
        b = verdict_fingerprint({"outcome": "refuted"})
        assert a != b

    def test_json_round_trip_preserves_fingerprint(self):
        """Payloads survive a JSON round trip (the wire) unchanged."""
        payload = {"outcome": "ok", "data": {"steps": 12, "flags": [1, 2]}}
        again = json.loads(json.dumps(payload))
        assert verdict_fingerprint(payload) == verdict_fingerprint(again)
