"""Unit tests for the runtime invariant monitors."""

import pytest

from repro import (
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    System,
    run,
)
from repro.agreement.commit_adopt import CommitAdoptConsensus
from repro.bench.workloads import distinct_inputs
from repro.errors import SpecificationViolation
from repro.runtime.events import InvokeEvent
from repro.runtime.system import Configuration
from repro.spec.invariants import (
    commit_adopt_round_monitor,
    consensus_history_monitor,
    lemma3_monitor,
    lemma12_monitor,
)


def fake_config(bank):
    return Configuration(procs=(), memory=(tuple(bank),))


EVENT = InvokeEvent(0, 1, "x")


class TestLemma3:
    def test_accepts_consistent_bank(self):
        monitor = lemma3_monitor()
        monitor(fake_config([("v", 0), ("v", 0), ("w", 1)]), EVENT)

    def test_rejects_two_values_per_id(self):
        monitor = lemma3_monitor()
        with pytest.raises(SpecificationViolation, match="Lemma 3"):
            monitor(fake_config([("v", 0), ("w", 0)]), EVENT)

    def test_holds_along_real_runs(self):
        system = System(OneShotSetAgreement(n=3, m=1, k=2),
                        workloads=distinct_inputs(3))
        for seed in (1, 2, 3):
            run(system, RandomScheduler(seed=seed), max_steps=800,
                on_limit="return", monitors=[lemma3_monitor()])


class TestLemma12:
    def test_accepts_different_instances_same_id(self):
        monitor = lemma12_monitor()
        monitor(
            fake_config([("v", 0, 1, ()), ("w", 0, 2, ("v",))]), EVENT
        )

    def test_rejects_conflicting_t_tuples(self):
        monitor = lemma12_monitor()
        with pytest.raises(SpecificationViolation, match="Lemma 12"):
            monitor(
                fake_config([("v", 0, 1, ()), ("w", 0, 1, ())]), EVENT
            )

    def test_holds_along_real_repeated_runs(self):
        system = System(
            RepeatedSetAgreement(n=3, m=1, k=1),
            workloads=distinct_inputs(3, instances=2),
        )
        for seed in (4, 5):
            run(system, RandomScheduler(seed=seed), max_steps=800,
                on_limit="return", monitors=[lemma12_monitor()])


class TestCommitAdoptRound:
    def test_rejects_two_values_one_round(self):
        monitor = commit_adopt_round_monitor(b_bank_index=0)
        with pytest.raises(SpecificationViolation, match="B-unique"):
            monitor(fake_config([(3, "v"), (3, "w")]), EVENT)

    def test_holds_along_real_runs(self):
        system = System(CommitAdoptConsensus(3), workloads=distinct_inputs(3))
        for seed in (1, 2, 3, 4):
            run(system, RandomScheduler(seed=seed), max_steps=1_500,
                on_limit="return",
                monitors=[commit_adopt_round_monitor()])


class TestConsensusHistory:
    def test_rejects_divergent_histories(self):
        monitor = consensus_history_monitor()
        bank = [("v", 0, 2, ("a",)), ("w", 1, 2, ("b",))]
        with pytest.raises(SpecificationViolation, match="history"):
            monitor(fake_config(bank), EVENT)

    def test_accepts_prefix_compatible(self):
        monitor = consensus_history_monitor()
        bank = [("v", 0, 3, ("a", "b")), ("w", 1, 2, ("a",))]
        monitor(fake_config(bank), EVENT)

    def test_holds_along_real_consensus_runs(self):
        system = System(
            RepeatedSetAgreement(n=3, m=1, k=1),
            workloads=distinct_inputs(3, instances=3),
        )
        for seed in (7, 8):
            run(system, RandomScheduler(seed=seed), max_steps=1_200,
                on_limit="return",
                monitors=[consensus_history_monitor()])


class TestMonitorIntegrationWithRunner:
    def test_monitor_sees_every_step(self):
        calls = []

        def counting_monitor(config, event):
            calls.append(event)

        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        execution = run(system, RandomScheduler(seed=1), max_steps=50_000,
                        monitors=[counting_monitor])
        assert len(calls) == execution.steps
