"""Unit tests for the exhaustive exploration checkers."""

from repro import OneShotSetAgreement, RepeatedSetAgreement, System, TrivialSetAgreement
from repro.explore import explore_progress_closure, explore_safety
from repro.runtime.runner import replay
from repro.spec.properties import check_k_agreement


class TestSafetyExploration:
    def test_trivial_system_fully_explored(self):
        system = System(TrivialSetAgreement(n=2, k=2), workloads=[["a"], ["b"]])
        result = explore_safety(system, k=2)
        assert result.complete and result.ok
        # 2 procs x (invoke, decide): interleavings of 4 steps; small space.
        assert result.configs_explored >= 4

    def test_nominal_oneshot_consensus_safe_exhaustively(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        result = explore_safety(system, k=1)
        assert result.complete
        assert result.ok

    def test_underprovisioned_violation_found_with_witness(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=[["a"], ["b"]],
        )
        result = explore_safety(system, k=1)
        assert result.safety_violations
        witness = result.safety_violations[0]
        assert witness.property_name == "k-Agreement"
        # The witness schedule reproduces the violation from scratch.
        execution = replay(system, witness.schedule)
        assert check_k_agreement(execution, k=1)

    def test_budget_truncation_flagged(self):
        system = System(
            OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
        )
        result = explore_safety(system, k=2, max_configs=50)
        assert not result.complete
        assert result.configs_explored == 50

    def test_stop_at_first_false_collects_more(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=1),
            workloads=[["a"], ["b"]],
        )
        result = explore_safety(system, k=1, stop_at_first=False,
                                max_configs=5_000)
        assert len(result.safety_violations) >= 1

    def test_summary_strings(self):
        system = System(TrivialSetAgreement(n=2, k=2), workloads=[["a"], ["b"]])
        result = explore_safety(system, k=2)
        assert "complete" in result.summary()
        assert "no violations" in result.summary()


class TestProgressClosure:
    def test_trivial_progress(self):
        system = System(TrivialSetAgreement(n=2, k=2), workloads=[["a"], ["b"]])
        result = explore_progress_closure(system, m=1)
        assert result.ok and result.complete

    def test_oneshot_consensus_progress_closure(self):
        """From every reachable configuration of the nominal one-shot
        consensus at n=2, each solo survivor finishes — the strongest
        finite rendition of obstruction-freedom."""
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        result = explore_progress_closure(
            system, m=1, max_configs=2_000, solo_budget=2_000
        )
        assert result.ok

    def test_repeated_consensus_progress_closure_bounded(self):
        system = System(
            RepeatedSetAgreement(n=2, m=1, k=1),
            workloads=[["a1", "a2"], ["b1", "b2"]],
        )
        result = explore_progress_closure(
            system, m=1, max_configs=1_000, solo_budget=3_000
        )
        assert result.ok
