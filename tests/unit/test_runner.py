"""Unit tests for run/replay/run_solo and the Execution record."""

import pytest

from repro import (
    FixedSchedule,
    OneShotSetAgreement,
    RoundRobinScheduler,
    SoloScheduler,
    System,
    TrivialSetAgreement,
    replay,
    run,
)
from repro.errors import NotEnabledError, StepLimitExceeded
from repro.runtime.runner import run_solo, schedule_of


def trivial_system(n=2, per_proc=1):
    protocol = TrivialSetAgreement(n=n, k=n)
    return System(
        protocol, workloads=[[f"v{p}.{j}" for j in range(per_proc)] for p in range(n)]
    )


def oneshot_system(n=3, m=1, k=2):
    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    return System(protocol, workloads=[[f"v{p}"] for p in range(n)])


class TestRun:
    def test_runs_to_quiescence(self):
        system = trivial_system(n=3, per_proc=2)
        execution = run(system, RoundRobinScheduler())
        assert system.all_halted(execution.config)
        assert len(execution.decisions) == 6

    def test_schedule_and_events_aligned(self):
        system = trivial_system()
        execution = run(system, RoundRobinScheduler())
        assert len(execution.schedule) == len(execution.events)
        assert all(e.pid == pid for e, pid in zip(execution.events, execution.schedule))

    def test_step_limit_raises(self):
        system = oneshot_system()
        with pytest.raises(StepLimitExceeded):
            run(system, RoundRobinScheduler(), max_steps=3)

    def test_step_limit_return_mode(self):
        system = oneshot_system()
        execution = run(
            system, RoundRobinScheduler(), max_steps=3, on_limit="return"
        )
        assert execution.hit_step_limit
        assert execution.steps == 3

    def test_bad_on_limit_value(self):
        with pytest.raises(ValueError):
            run(trivial_system(), RoundRobinScheduler(), on_limit="bogus")

    def test_stop_condition(self):
        system = trivial_system(n=3, per_proc=1)
        execution = run(
            system,
            RoundRobinScheduler(),
            stop=lambda config, events: len(events) >= 2,
        )
        assert execution.steps == 2

    def test_scheduler_choosing_disabled_pid_raises(self):
        system = trivial_system(n=2, per_proc=1)
        with pytest.raises(NotEnabledError):
            run(system, FixedSchedule([0, 0, 0, 0, 0]))


class TestReplay:
    def test_replay_reproduces_run_exactly(self):
        system = oneshot_system()
        execution = run(system, RoundRobinScheduler(), max_steps=50_000)
        again = replay(system, execution.schedule)
        assert again.events == execution.events
        assert again.config == execution.config

    def test_replay_from_intermediate_config(self):
        system = oneshot_system()
        execution = run(system, SoloScheduler(0))
        midpoint = replay(system, execution.schedule[:5])
        rest = replay(system, execution.schedule[5:], initial=midpoint.config)
        assert rest.config == execution.config


class TestRunSolo:
    def test_solo_decides_own_value_consensus(self):
        """A solo run of obstruction-free consensus must decide its input
        (validity with a single participant)."""
        system = oneshot_system(n=3, m=1, k=1)
        execution = run_solo(system, 1)
        assert system.outputs(execution.config)[1] == ("v1",)

    def test_solo_until_decisions(self):
        protocol = TrivialSetAgreement(n=2, k=2)
        system = System(protocol, workloads=[["a", "b", "c"], ["x"]])
        execution = run_solo(system, 0, until_decisions=2)
        assert system.outputs(execution.config)[0] == ("a", "b")

    def test_solo_budget(self):
        system = oneshot_system()
        with pytest.raises(StepLimitExceeded):
            run_solo(system, 0, max_steps=2)


class TestScheduleOf:
    def test_from_execution(self):
        system = trivial_system()
        execution = run(system, RoundRobinScheduler())
        assert schedule_of(execution) == execution.schedule

    def test_from_events(self):
        system = trivial_system()
        execution = run(system, RoundRobinScheduler())
        assert schedule_of(execution.events) == execution.schedule
