"""Symmetry reduction: gating, idempotence, and orbit invariance."""

from repro import AnonymousRepeatedSetAgreement, OneShotSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.explore import canonical_fingerprint, canonicalize, symmetry_classes
from repro.objects import implemented_snapshot_layout
from repro.runtime.system import Configuration


def anon_system(workloads):
    return System(
        AnonymousOneShotSetAgreement(n=len(workloads), m=1, k=1),
        workloads=workloads,
    )


def permute_procs(config, perm):
    """The configuration with process p's record moved to position perm[p]."""
    procs = list(config.procs)
    out = list(procs)
    for pid, target in enumerate(perm):
        out[target] = procs[pid]
    return Configuration(procs=tuple(out), memory=config.memory)


class TestGating:
    def test_non_anonymous_protocol_has_no_classes(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["a"]]
        )
        assert symmetry_classes(system) is None

    def test_distinct_workloads_have_no_classes(self):
        system = anon_system([["a"], ["b"], ["c"]])
        assert symmetry_classes(system) is None

    def test_implemented_layout_disables_reduction(self):
        """Register-level substrates key behaviour on pid — no quotient."""
        protocol = AnonymousRepeatedSetAgreement(n=3, m=1, k=1)
        layout = implemented_snapshot_layout(protocol, "anonymous-double-collect")
        system = System(
            protocol, workloads=[["a"], ["a"], ["a"]], layout=layout
        )
        assert symmetry_classes(system) is None

    def test_dynamic_workloads_have_no_classes(self):
        system = System(
            AnonymousOneShotSetAgreement(n=2, m=1, k=1),
            n=2,
            workload_fn=lambda pid, invocation, outputs: (
                "a" if invocation == 1 else None
            ),
        )
        assert symmetry_classes(system) is None

    def test_symmetric_anonymous_system_has_classes(self):
        system = anon_system([["a"], ["b"], ["a"]])
        classes = symmetry_classes(system)
        assert classes == ((0, 2),)

    def test_all_equal_workloads_one_class(self):
        system = anon_system([["a"], ["a"], ["a"]])
        assert symmetry_classes(system) == ((0, 1, 2),)


class TestCanonicalForm:
    def test_idempotent(self):
        system = anon_system([["a"], ["a"], ["a"]])
        classes = symmetry_classes(system)
        config = system.initial_configuration()
        for pid in (0, 1, 0, 2, 1):
            config = system.step(config, pid).config
        once = canonicalize(config, classes)
        twice = canonicalize(once, classes)
        assert once == twice

    def test_orbit_members_share_fingerprint(self):
        system = anon_system([["a"], ["a"], ["a"]])
        classes = symmetry_classes(system)
        config = system.initial_configuration()
        for pid in (0, 0, 1, 0, 2):
            config = system.step(config, pid).config
        for perm in [(1, 0, 2), (2, 1, 0), (1, 2, 0), (0, 2, 1)]:
            mirrored = permute_procs(config, perm)
            assert canonical_fingerprint(mirrored, classes) == \
                canonical_fingerprint(config, classes)

    def test_permutations_respect_class_boundaries(self):
        """Only same-workload processes may swap: cross-class stays put."""
        system = anon_system([["a"], ["b"], ["a"]])
        classes = symmetry_classes(system)
        config = system.initial_configuration()
        for pid in (1, 1, 1):  # advance only the singleton-class process
            config = system.step(config, pid).config
        canon = canonicalize(config, classes)
        assert canon.procs[1] == config.procs[1]

    def test_memory_is_untouched(self):
        system = anon_system([["a"], ["a"]])
        classes = symmetry_classes(system)
        config = system.initial_configuration()
        for pid in (0, 0, 1, 0):
            config = system.step(config, pid).config
        assert canonicalize(config, classes).memory == config.memory


class TestExplorationEquivalence:
    def test_canonicalized_explore_same_verdict_fewer_states(self):
        # Mixed-workload instances are covered by bench_explore_parallel
        # (they are too large for a unit test); all-equal inputs give the
        # maximal orbit and a fast complete exploration.
        from repro.explore import explore_safety

        system = anon_system([["a"], ["a"], ["a"]])
        plain = explore_safety(system, k=1)
        canon = explore_safety(system, k=1, canonicalize=True)
        assert plain.complete and canon.complete
        assert plain.ok == canon.ok
        assert canon.configs_discovered < plain.configs_discovered

    def test_canonicalize_flag_inert_without_symmetry(self):
        from repro.explore import explore_safety

        system = anon_system([["a"], ["b"]])
        plain = explore_safety(system, k=1)
        canon = explore_safety(system, k=1, canonicalize=True)
        assert canon.configs_explored == plain.configs_explored
        assert canon.configs_discovered == plain.configs_discovered
