"""Unit tests for repro._types: the BOT sentinel and Params mapping."""

import pickle

import pytest

from repro._types import BOT, Params, _Bot, freeze_sequence, is_bot


class TestBot:
    def test_singleton(self):
        assert _Bot() is BOT

    def test_is_bot(self):
        assert is_bot(BOT)
        assert not is_bot(None)
        assert not is_bot(0)
        assert not is_bot("⊥")

    def test_repr(self):
        assert repr(BOT) == "⊥"

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOT)) is BOT

    def test_hashable_and_usable_in_sets(self):
        assert len({BOT, BOT, None}) == 2


class TestParams:
    def test_getitem(self):
        p = Params(n=4, m=1, k=2)
        assert p["n"] == 4
        assert p["m"] == 1
        assert p["k"] == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Params(n=4)["zzz"]

    def test_order_insensitive_equality_and_hash(self):
        a = Params(n=4, m=1, k=2)
        b = Params(k=2, m=1, n=4)
        assert a == b
        assert hash(a) == hash(b)

    def test_mapping_protocol(self):
        p = Params(a=1, b=2)
        assert set(p) == {"a", "b"}
        assert len(p) == 2
        assert dict(p) == {"a": 1, "b": 2}
        assert p.get("a") == 1
        assert p.get("zzz", 9) == 9

    def test_updated_returns_new_merged(self):
        p = Params(n=4, m=1)
        q = p.updated(m=2, extra="x")
        assert q["m"] == 2 and q["extra"] == "x" and q["n"] == 4
        assert p["m"] == 1  # original untouched

    def test_merge_positional_mappings(self):
        p = Params({"a": 1, "b": 2}, b=3)
        assert p["a"] == 1 and p["b"] == 3

    def test_repr_contains_items(self):
        assert "n=4" in repr(Params(n=4))


class TestFreezeSequence:
    def test_tuple_identity(self):
        t = (1, 2)
        assert freeze_sequence(t) is t

    def test_list_to_tuple(self):
        assert freeze_sequence([1, 2]) == (1, 2)

    def test_generator(self):
        assert freeze_sequence(x for x in range(3)) == (0, 1, 2)
