"""Unit tests for the content-addressed verdict store."""

import warnings

import pytest

from repro.serve.protocol import verdict_fingerprint
from repro.serve.store import VerdictStore


def make_entry(key, outcome="ok"):
    result = {"outcome": outcome, "detail": "d", "data": {"x": 1},
              "job": {"n": 3}}
    return {"key": key, "fingerprint": verdict_fingerprint(result),
            "result": result}


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        entry = make_entry("k1")
        store.put("k1", entry)
        assert store.get("k1") == entry
        assert list(store.keys()) == ["k1"]
        assert len(store) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        assert store.get("absent") is None
        assert len(store) == 0

    def test_overwrite_is_atomic_last_writer_wins(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        store.put("k", make_entry("k", "ok"))
        store.put("k", make_entry("k", "refuted"))
        loaded = store.get("k")
        assert loaded is not None
        assert loaded["result"]["outcome"] == "refuted"


class TestCorruptionQuarantine:
    def test_truncation_is_a_miss_and_quarantines(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        path = store.put("k", make_entry("k"))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.warns(RuntimeWarning, match="seal"):
            assert store.get("k") is None
        assert not path.exists()  # moved to quarantine
        assert any(store.quarantine_dir.iterdir())

    def test_every_bit_flip_is_a_miss_never_a_wrong_verdict(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        path = store.put("k", make_entry("k"))
        pristine = path.read_bytes()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for offset in range(len(pristine)):
                flipped = bytearray(pristine)
                flipped[offset] ^= 0x01
                path.write_bytes(bytes(flipped))
                assert store.get("k") is None
                # restore for the next iteration (get may quarantine)
                path.write_bytes(pristine)
        assert store.get("k") is not None

    def test_key_mismatch_quarantines(self, tmp_path):
        """An entry sealed under one key but stored at another (a mv, a
        backup restore gone wrong) must read as a miss, not as the other
        job's verdict."""
        store = VerdictStore(tmp_path / "store")
        path = store.put("honest", make_entry("honest"))
        path.rename(store.path("impostor"))
        with pytest.warns(RuntimeWarning, match="key mismatch"):
            assert store.get("impostor") is None

    def test_fingerprint_mismatch_quarantines(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        entry = make_entry("k")
        entry["fingerprint"] = "0" * 32  # sealed, but lying about itself
        store.put("k", entry)
        with pytest.warns(RuntimeWarning, match="fingerprint mismatch"):
            assert store.get("k") is None

    def test_non_json_sealed_payload_quarantines(self, tmp_path):
        from repro.durable.checkpoint import write_sealed

        store = VerdictStore(tmp_path / "store")
        write_sealed(store.path("k"), b"sealed but not json")
        with pytest.warns(RuntimeWarning, match="not JSON"):
            assert store.get("k") is None


class TestConcurrentWriters:
    def test_racing_writers_leave_a_readable_entry(self, tmp_path):
        """Two stores writing the same key concurrently: os.replace makes
        each write atomic, and determinism makes the payloads identical,
        so the survivor is always valid."""
        a = VerdictStore(tmp_path / "store")
        b = VerdictStore(tmp_path / "store")
        entry = make_entry("k")
        a.put("k", entry)
        b.put("k", entry)
        assert a.get("k") == entry == b.get("k")
