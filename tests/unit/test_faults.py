"""Unit tests for the fault-injection vocabulary and faulty layouts."""

import pytest

from repro import OneShotSetAgreement, RepeatedSetAgreement, System, replay, run
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.errors import ConfigurationError, MemoryError_
from repro.faults import (
    CORRUPT_VALUE,
    FaultPlan,
    FaultyMemoryLayout,
    LostWrite,
    ProcessCrash,
    ProcessRestart,
    SpuriousReset,
    StuckAt,
    build_family,
    corruption_plan_family,
    crash_plan_family,
    faulty_system,
    plan_scheduler,
)
from repro.faults.plans import corrupt_entry, snapshot_bank
from repro.memory import register
from repro.sched import RoundRobinScheduler


def oneshot_system(n=3, m=1, k=1):
    return System(
        OneShotSetAgreement(n=n, m=m, k=k), workloads=distinct_inputs(n)
    )


class TestRegisterFaultSemantics:
    def test_lost_write_leaves_bank_unchanged(self):
        bank = ("a", "b", "c")
        assert register.lost_write(bank, 1, "X") == bank

    def test_lost_write_still_validates_index(self):
        with pytest.raises(MemoryError_):
            register.lost_write(("a",), 3, "X")

    def test_stuck_read_ignores_stored_value(self):
        assert register.stuck_read(("a", "b"), 0, "stuck") == "stuck"

    def test_stuck_read_still_validates_index(self):
        with pytest.raises(MemoryError_):
            register.stuck_read(("a",), -1, "stuck")

    def test_spurious_reset_reverts_to_initial(self):
        assert register.spurious_reset(("a", "b"), 1, None) == ("a", None)


class TestFaultPlans:
    def test_plans_are_hashable_values(self):
        plan = FaultPlan(
            name="p",
            crashes=(ProcessCrash(0, 3),),
            restarts=(ProcessRestart(0, 9),),
            register_faults=(StuckAt("A__bank", 0, "x"),),
        )
        assert plan == FaultPlan(
            name="p",
            crashes=(ProcessCrash(0, 3),),
            restarts=(ProcessRestart(0, 9),),
            register_faults=(StuckAt("A__bank", 0, "x"),),
        )
        assert hash(plan) is not None
        assert not plan.crash_only
        assert FaultPlan(name="q", crashes=(ProcessCrash(1, 2),)).crash_only

    def test_families_are_seed_deterministic(self):
        system = oneshot_system()
        assert crash_plan_family(system, trials=5, seed=11) == \
            crash_plan_family(system, trials=5, seed=11)
        assert corruption_plan_family(system, trials=5, seed=11) == \
            corruption_plan_family(system, trials=5, seed=11)
        assert crash_plan_family(system, trials=5, seed=11) != \
            crash_plan_family(system, trials=5, seed=12)

    def test_crash_family_always_leaves_a_survivor(self):
        system = oneshot_system(n=4)
        for plan in crash_plan_family(system, trials=30, seed=5):
            assert len(plan.crashes) <= system.n - 1
            assert plan.crash_only

    def test_corruption_family_targets_the_snapshot_bank(self):
        system = oneshot_system()
        bank, size = snapshot_bank(system)
        for plan in corruption_plan_family(system, trials=8, seed=5):
            assert plan.register_faults
            for fault in plan.register_faults:
                assert fault.bank == bank
                assert 0 <= fault.index < size

    def test_build_family_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_family("meteor-strike", oneshot_system(), trials=1, seed=1)

    def test_corrupt_entry_matches_protocol_shape(self):
        oneshot = corrupt_entry(oneshot_system())
        assert oneshot[0] == CORRUPT_VALUE and len(oneshot) == 2
        repeated = corrupt_entry(
            System(RepeatedSetAgreement(n=3, m=1, k=1),
                   workloads=distinct_inputs(3, instances=2))
        )
        assert repeated[0] == CORRUPT_VALUE and len(repeated) == 4
        anon = corrupt_entry(
            System(AnonymousOneShotSetAgreement(n=3, m=1, k=1),
                   workloads=distinct_inputs(3))
        )
        assert anon == CORRUPT_VALUE


class TestFaultyMemoryLayout:
    def test_register_count_unchanged(self):
        system = oneshot_system()
        faulty = FaultyMemoryLayout(
            system.layout, (StuckAt("A__bank", 0, "x"),)
        )
        assert faulty.register_count() == system.layout.register_count()

    def test_out_of_range_fault_rejected(self):
        system = oneshot_system()
        with pytest.raises(ConfigurationError):
            FaultyMemoryLayout(system.layout, (StuckAt("A__bank", 99, "x"),))

    def test_two_faults_on_one_register_rejected(self):
        system = oneshot_system()
        with pytest.raises(ConfigurationError):
            FaultyMemoryLayout(
                system.layout,
                (StuckAt("A__bank", 0, "x"), LostWrite("A__bank", 0)),
            )

    def test_stuck_at_bank_is_observed_by_scans(self):
        system = oneshot_system()
        entry = corrupt_entry(system)
        bank, size = snapshot_bank(system)
        plan = FaultPlan(
            name="stuck",
            register_faults=tuple(
                StuckAt(bank, i, entry) for i in range(size)
            ),
        )
        faulty = faulty_system(system, plan)
        execution = run(faulty, RoundRobinScheduler(), max_steps=200,
                        on_limit="return")
        # Every process decides the corrupt value: the stuck bank is all any
        # scan can observe.
        outputs = {out for proc in execution.config.procs
                   for out in proc.outputs}
        assert outputs == {CORRUPT_VALUE}

    def test_occurrence_clock_keeps_executions_replayable(self):
        system = oneshot_system()
        bank, _ = snapshot_bank(system)
        plan = FaultPlan(
            name="reset",
            register_faults=(SpuriousReset(bank, 0, occurrence=2),
                             LostWrite(bank, 1, occurrence=1)),
        )
        first = run(faulty_system(system, plan), RoundRobinScheduler(),
                    max_steps=5_000, on_limit="return")
        second = replay(faulty_system(system, plan), first.schedule)
        assert second.config == first.config
        assert second.events == first.events

    def test_configurations_stay_hashable(self):
        system = oneshot_system()
        bank, _ = snapshot_bank(system)
        plan = FaultPlan(
            name="lost", register_faults=(LostWrite(bank, 0),)
        )
        faulty = faulty_system(system, plan)
        config = faulty.initial_configuration()
        seen = {config}
        for _ in range(20):
            if 0 not in faulty.enabled_pids(config):
                break
            config = faulty.step(config, 0).config
            seen.add(config)
        assert len(seen) > 1

    def test_lost_write_drops_exactly_the_named_occurrence(self):
        # Drive one process; its first update to component 0 must vanish,
        # later ones must land.
        system = oneshot_system()
        bank, _ = snapshot_bank(system)
        plan = FaultPlan(name="lost", register_faults=(LostWrite(bank, 0),))
        faulty = faulty_system(system, plan)
        layout = faulty.layout
        pos = layout.bank_index(bank)
        config = faulty.initial_configuration()
        wrote_then_lost = False
        for _ in range(50):
            before = config.memory[pos][0]
            config = faulty.step(config, 0).config
            after = config.memory[pos][0]
            if before is after and config.memory[-1][0] >= 1:
                wrote_then_lost = True
            if after != before:
                break  # a later write landed
        assert wrote_then_lost


class TestInjection:
    def test_faulty_system_shares_automaton_and_workloads(self):
        system = oneshot_system()
        plan = FaultPlan(name="none")
        faulty = faulty_system(system, plan)
        assert faulty.automaton is system.automaton
        assert faulty.workloads == system.workloads

    def test_duplicate_crash_pid_rejected(self):
        plan = FaultPlan(
            name="dup", crashes=(ProcessCrash(0, 1), ProcessCrash(0, 2))
        )
        with pytest.raises(ConfigurationError):
            plan_scheduler(plan)

    def test_plan_scheduler_honors_crashes(self):
        system = oneshot_system()
        plan = FaultPlan(name="c", crashes=(ProcessCrash(0, 2),),
                         scheduler_seed=7)
        execution = run(system, plan_scheduler(plan), max_steps=5_000,
                        on_limit="return")
        for index, pid in enumerate(execution.schedule):
            if pid == 0:
                assert index < 2
