"""Docs lint: prose may not reference CLI flags or symbols that don't exist.

Documentation drifts when code moves underneath it.  This test pins the
documents listed in ``[tool.repro.docs-lint]`` (pyproject.toml) to the
real codebase:

* every ``--flag`` token must be an option of some ``python -m repro``
  sub-command (collected by walking the live argparse parser);
* every dotted ``repro.*`` reference — including brace groups like
  ``repro.x.{a, b}`` — must import/resolve to a real module or attribute.

Tokens that look like references but are neither (pytest flags quoted in
the README, file names like ``repro.pth``) go on the pyproject ignore
lists, so exceptions are reviewed in one place rather than silently
scattered through the checker.
"""

import argparse
import importlib
import pathlib
import re
import tomllib

import pytest

from repro.cli import build_parser

REPO_ROOT = pathlib.Path(__file__).parents[2]

#: ``--some-flag`` tokens; the lookbehind keeps ``register--like`` prose
#: and mid-word dashes from matching.
FLAG_RE = re.compile(r"(?<![\w-])--[a-zA-Z][\w-]*")

#: ``repro.a.b`` dotted paths, optionally ending in a ``{x, y}`` brace
#: group (the docs' shorthand for several names under one prefix).
SYMBOL_RE = re.compile(r"\brepro(?:\.\w+)+(?:\.\{[^}]*\})?")


def _lint_config():
    with open(REPO_ROOT / "pyproject.toml", "rb") as fh:
        pyproject = tomllib.load(fh)
    return pyproject["tool"]["repro"]["docs-lint"]


def _doc_files(config):
    files = []
    for pattern in config["paths"]:
        matches = sorted(REPO_ROOT.glob(pattern))
        assert matches, f"docs-lint path {pattern!r} matched no files"
        files.extend(matches)
    return files


def _parser_flags(parser: argparse.ArgumentParser):
    """All option strings of the parser and, recursively, its sub-parsers."""
    flags = set()
    for action in parser._actions:
        flags.update(action.option_strings)
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                flags |= _parser_flags(sub)
    return flags


def _expand_braces(token: str):
    """``repro.x.{a, b}`` -> [``repro.x.a``, ``repro.x.b``]; else [token]."""
    if "{" not in token:
        return [token]
    prefix, group = token.split(".{", 1)
    names = group.rstrip("}").split(",")
    return [f"{prefix}.{name.strip()}" for name in names if name.strip()]


def _resolves(dotted: str) -> bool:
    """True if ``dotted`` names an importable module or attribute chain."""
    parts = dotted.split(".")
    for depth in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:depth]))
        except ImportError:
            continue
        try:
            for attr in parts[depth:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


CONFIG = _lint_config()
DOC_FILES = _doc_files(CONFIG)
DOC_IDS = [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


class TestLintConfig:
    def test_ignore_lists_are_not_stale(self):
        """Every ignored token still appears in some linted document."""
        corpus = "\n".join(path.read_text() for path in DOC_FILES)
        for token in CONFIG["ignore-flags"] + CONFIG["ignore-symbols"]:
            assert token in corpus, f"stale ignore entry: {token!r}"

    def test_ignored_flags_are_really_unknown(self):
        """The flag ignore list may not shadow real CLI flags."""
        real = _parser_flags(build_parser())
        for flag in CONFIG["ignore-flags"]:
            assert flag not in real, (
                f"{flag!r} is a real CLI flag; drop it from ignore-flags"
            )


class TestDocsCoverExploreFlags:
    """Reverse lint: the explorer's whole CLI surface must be documented.

    The forward lint only rejects flags the docs invent; it is happy with
    docs that fall behind the parser (exactly the drift that PR 6 fixed
    for ``--backend`` and the footprint output).  This direction pins it:
    every option of ``repro explore --help`` has to appear somewhere in
    the linted corpus.
    """

    def test_every_explore_flag_appears_in_the_docs(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        flags = _parser_flags(subparsers.choices["explore"]) - {"-h", "--help"}
        corpus = "\n".join(path.read_text() for path in DOC_FILES)
        undocumented = sorted(flag for flag in flags if flag not in corpus)
        assert not undocumented, (
            "`repro explore` flags missing from the documentation corpus "
            f"({', '.join(DOC_IDS)}): {undocumented}"
        )


class TestDocsCoverAnalyzeFlags:
    """Reverse lint for the analyzer: every ``repro analyze`` flag must
    appear in the documentation corpus — new passes (``--concurrency``)
    cannot land undocumented."""

    def test_every_analyze_flag_appears_in_the_docs(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        flags = _parser_flags(subparsers.choices["analyze"]) - {"-h", "--help"}
        corpus = "\n".join(path.read_text() for path in DOC_FILES)
        undocumented = sorted(flag for flag in flags if flag not in corpus)
        assert not undocumented, (
            "`repro analyze` flags missing from the documentation corpus "
            f"({', '.join(DOC_IDS)}): {undocumented}"
        )


class TestDocsCoverObservabilityFlags:
    """Reverse lint for the observability surface: every flag of
    ``repro report`` and ``repro top`` — and the shared ``--profile``
    switch — must appear in the documentation corpus, so new
    observability knobs cannot land undocumented."""

    @pytest.mark.parametrize("command", ["report", "top"])
    def test_every_flag_appears_in_the_docs(self, command):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        flags = _parser_flags(subparsers.choices[command]) - {"-h", "--help"}
        corpus = "\n".join(path.read_text() for path in DOC_FILES)
        undocumented = sorted(flag for flag in flags if flag not in corpus)
        assert not undocumented, (
            f"`repro {command}` flags missing from the documentation corpus "
            f"({', '.join(DOC_IDS)}): {undocumented}"
        )

    def test_profile_flag_is_documented(self):
        corpus = "\n".join(path.read_text() for path in DOC_FILES)
        assert "--profile" in corpus


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=DOC_IDS
)
class TestDocsMatchCode:
    def test_cli_flags_exist(self, doc):
        known = _parser_flags(build_parser()) | set(CONFIG["ignore-flags"])
        unknown = sorted(
            {flag for flag in FLAG_RE.findall(doc.read_text())
             if flag not in known}
        )
        assert not unknown, (
            f"{doc.name} references CLI flags that no sub-command of "
            f"`python -m repro` defines: {unknown}"
        )

    def test_symbols_resolve(self, doc):
        ignored = set(CONFIG["ignore-symbols"])
        broken = sorted({
            name
            for token in SYMBOL_RE.findall(doc.read_text())
            for name in _expand_braces(token)
            if name not in ignored and not _resolves(name)
        })
        assert not broken, (
            f"{doc.name} references symbols that do not import/resolve: "
            f"{broken}"
        )
