"""Regression pins: the paper's exact numbers, hard-coded.

If any refactor shifts a formula or an algorithm's space accounting, these
fail with the paper-vs-measured discrepancy spelled out.  Values are
transcribed from the paper's text, not computed — that is the point.
"""

import pytest

from repro import (
    AnonymousRepeatedSetAgreement,
    BaselineOneShotSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds.bounds import figure1_table
from repro.objects.layouts import substrate_register_count


class TestAbstractNumbers:
    """Abstract: 'repeated k-set agreement can be solved using n+2m−k
    registers ... nearly matching lower bound of n+m−k'."""

    def test_abstract_example(self):
        table = figure1_table(10, 2, 4)
        assert table["non-anonymous/repeated/lower"].value == 10 + 2 - 4
        assert table["non-anonymous/repeated/upper"].value == min(10 + 4 - 4, 10)


class TestIntroductionNumbers:
    def test_m1_improvement_over_dfgr(self):
        """§1: 'improves the number of registers used in the case where
        m = 1 from 2(n−k) to n−k+2'."""
        n, k = 9, 4
        assert OneShotSetAgreement(n=n, m=1, k=k).components == n - k + 2
        assert BaselineOneShotSetAgreement(n=n, k=k).components == 2 * (n - k)

    def test_obstruction_free_repeated_consensus_exactly_n(self):
        """§1: 'obstruction-free repeated consensus requires exactly n
        registers'."""
        for n in (2, 5, 11):
            table = figure1_table(n, 1, 1)
            assert table["non-anonymous/repeated/lower"].value == n
            assert table["non-anonymous/repeated/upper"].value == n


class TestSection4Numbers:
    def test_figure3_snapshot_size(self):
        """§4.1: 'a snapshot object of r = n + 2m − k components'."""
        assert OneShotSetAgreement(n=7, m=3, k=5).components == 7 + 6 - 5

    def test_ell_is_n_minus_k_plus_m(self):
        """§4.1: 'the last ℓ = n−k+m processes all agree on at most m
        different values'."""
        protocol = AnonymousRepeatedSetAgreement(n=7, m=2, k=4)
        assert protocol.ell == 7 + 2 - 4

    def test_dfgr_comparison_case(self):
        """§4.1: '[4] ... uses 2(n−k) registers, compared to the n−k+2
        registers used by ours' — concretely at (n, k) = (10, 6)."""
        assert BaselineOneShotSetAgreement(n=10, k=6).components == 8
        assert OneShotSetAgreement(n=10, m=1, k=6).components == 6


class TestSection6Numbers:
    def test_anonymous_snapshot_size(self):
        """§6: 'a snapshot object with r = (m+1)(n−k) + m² components'."""
        protocol = AnonymousRepeatedSetAgreement(n=9, m=2, k=5)
        assert protocol.components == 3 * 4 + 4

    def test_anonymous_total_registers(self):
        """Theorem 11: '(m+1)(n−k) + m² + 1 registers'."""
        protocol = AnonymousRepeatedSetAgreement(n=9, m=2, k=5)
        system = System(protocol, workloads=distinct_inputs(9, instances=1))
        assert system.layout.register_count() == 3 * 4 + 4 + 1

    def test_one_shot_saves_one_register(self):
        """§7/App. B: 'for the one-shot case, the register H is not
        required, so we can solve the one-shot version using one less
        register'."""
        repeated = System(
            AnonymousRepeatedSetAgreement(n=6, m=1, k=3),
            workloads=distinct_inputs(6),
        ).layout.register_count()
        oneshot = System(
            AnonymousOneShotSetAgreement(n=6, m=1, k=3),
            workloads=distinct_inputs(6),
        ).layout.register_count()
        assert oneshot == repeated - 1


class TestSection7Numbers:
    def test_the_two_vs_three_register_case(self):
        """§7: 'when m = 1 and k = n−1, [the one-shot algorithm of [4]]
        uses two registers compared to our three'."""
        n = 6
        ours = min(OneShotSetAgreement(n=n, m=1, k=n - 1).components, n)
        assert ours == 3  # min(n+2-(n-1), n) = 3
        # And the baseline reconstruction refuses this regime entirely:
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BaselineOneShotSetAgreement(n=n, k=n - 1)


class TestTheorem7MinAccounting:
    @pytest.mark.parametrize("n,m,k", [(4, 2, 2), (5, 2, 2), (6, 3, 3)])
    def test_swmr_realizes_min_when_components_exceed_n(self, n, m, k):
        protocol = OneShotSetAgreement(n=n, m=m, k=k)
        assert protocol.components == n + 2 * m - k > n
        assert substrate_register_count(protocol, "swmr") == n

    def test_repeated_same_accounting(self):
        protocol = RepeatedSetAgreement(n=4, m=2, k=2)
        assert substrate_register_count(protocol, "swmr") == 4
