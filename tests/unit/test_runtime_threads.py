"""Unit tests for multi-threaded operation semantics (Figure 5's regime)."""

from repro import AnonymousRepeatedSetAgreement, System
from repro.agreement.base import HISTORY_REGISTER, SNAPSHOT
from repro.memory.ops import ReadOp, ScanOp, UpdateOp, WriteOp
from repro.objects import implemented_snapshot_layout
from repro.runtime.events import DecideEvent, MemoryEvent


def make_system(n=2, m=1, k=1, layout_kind=None, workloads=None):
    protocol = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
    layout = (
        implemented_snapshot_layout(protocol, layout_kind)
        if layout_kind
        else None
    )
    if workloads is None:
        workloads = [[f"v{i}"] for i in range(n)]
    return System(protocol, workloads=workloads, layout=layout)


def solo_steps(system, pid, count):
    config = system.initial_configuration()
    events = []
    for _ in range(count):
        if not system.enabled(config, pid):
            break
        result = system.step(config, pid)
        config = result.config
        events.append(result.event)
    return config, events


class TestThreadAlternation:
    def test_threads_alternate_per_step(self):
        """After the invoke, slot turns alternate 0,1,0,1,… so thread 2's
        H-poll interleaves the loop at single-access granularity."""
        system = make_system()
        config, events = solo_steps(system, 0, 7)
        threads = [e.thread for e in events if isinstance(e, MemoryEvent)]
        assert threads[:6] == [0, 1, 0, 1, 0, 1]

    def test_thread_op_kinds(self):
        """Thread 0 does H-write/updates/scans; thread 1 only reads H."""
        system = make_system()
        config, events = solo_steps(system, 0, 9)
        for event in events:
            if not isinstance(event, MemoryEvent):
                continue
            if event.thread == 1:
                assert isinstance(event.op, ReadOp)
                assert event.op.obj == HISTORY_REGISTER
            else:
                assert isinstance(event.op, (WriteOp, UpdateOp, ScanOp))

    def test_decide_ends_whole_operation(self):
        """Whichever thread decides, the operation completes and the other
        thread takes no further steps for it."""
        system = make_system()
        config, events = solo_steps(system, 0, 200)
        decides = [e for e in events if isinstance(e, DecideEvent)]
        assert len(decides) == 1
        decide_index = events.index(decides[0])
        assert all(
            not isinstance(e, MemoryEvent) for e in events[decide_index + 1:]
        )


class TestThreadsWithFrames:
    def test_poll_thread_interleaves_inside_scan_frames(self):
        """On the register-level substrate, thread 1's H reads occur between
        individual register reads of thread 0's scan frame — the granularity
        the starvation-rescue mechanism needs."""
        system = make_system(layout_kind="anonymous-double-collect")
        config, events = solo_steps(system, 0, 30)
        memory = [e for e in events if isinstance(e, MemoryEvent)]
        # Find a maximal run of thread-0 frame events; thread-1 events must
        # appear within 2 steps of any of them (strict alternation).
        for first, second in zip(memory, memory[1:]):
            if first.thread == 0:
                assert second.thread == 1
            else:
                assert second.thread == 0

    def test_frames_are_per_thread(self):
        """Thread 1 operates on a primitive register while thread 0 holds an
        open frame: its events are never marked in_frame."""
        system = make_system(layout_kind="anonymous-double-collect")
        config, events = solo_steps(system, 0, 40)
        for event in events:
            if isinstance(event, MemoryEvent) and event.thread == 1:
                assert not event.in_frame
                assert event.op.obj == HISTORY_REGISTER

    def test_snapshot_accesses_are_frames(self):
        system = make_system(layout_kind="anonymous-double-collect")
        config, events = solo_steps(system, 0, 40)
        for event in events:
            if isinstance(event, MemoryEvent) and event.thread == 0:
                if event.op.obj != HISTORY_REGISTER:
                    assert event.in_frame
