"""Unit tests for the explorer's partial-order reduction."""

import pytest

from repro import OneShotSetAgreement, System, TrivialSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety


class TestLocalFirstReduction:
    def test_unknown_reduction_rejected(self):
        system = System(TrivialSetAgreement(n=2, k=2),
                        workloads=distinct_inputs(2))
        with pytest.raises(ValueError):
            explore_safety(system, k=2, reduction="magic")

    def test_shrinks_trivial_system_dramatically(self):
        system = System(TrivialSetAgreement(n=3, k=3),
                        workloads=distinct_inputs(3))
        full = explore_safety(system, k=3, reduction="none")
        reduced = explore_safety(system, k=3, reduction="local-first")
        assert reduced.complete and reduced.ok
        # Every step of the trivial protocol is local: the reduced graph
        # is a single line of configurations.
        assert reduced.configs_explored == 2 * 3 + 1
        assert reduced.configs_explored < full.configs_explored

    @pytest.mark.parametrize("components,expect_violation", [
        (3, False),   # nominal for n=2: safe
        (2, True),    # under-provisioned: unsafe
    ])
    def test_verdict_agrees_with_full_exploration(self, components,
                                                  expect_violation):
        def explore(reduction):
            system = System(
                OneShotSetAgreement(n=2, m=1, k=1, components=components),
                workloads=distinct_inputs(2),
            )
            return explore_safety(system, k=1, max_configs=300_000,
                                  reduction=reduction)

        full = explore(reduction="none")
        reduced = explore(reduction="local-first")
        assert bool(full.safety_violations) == expect_violation
        assert bool(reduced.safety_violations) == expect_violation
        assert reduced.configs_explored <= full.configs_explored

    def test_reduced_witness_still_replays(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=distinct_inputs(2),
        )
        result = explore_safety(system, k=1, reduction="local-first")
        assert result.safety_violations
        from repro.runtime.runner import replay
        from repro.spec.properties import check_k_agreement

        witness = result.safety_violations[0]
        execution = replay(system, witness.schedule)
        assert check_k_agreement(execution, k=1)

    def test_reduction_preserves_complete_flag_semantics(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        reduced = explore_safety(system, k=1, reduction="local-first")
        assert reduced.complete and reduced.ok
