"""Edge-case tests sweeping the corners the main suites skip."""

import pytest

from repro import (
    OneShotSetAgreement,
    RoundRobinScheduler,
    System,
    TrivialSetAgreement,
    run,
)
from repro.bench.workloads import distinct_inputs
from repro.errors import ConfigurationError, SpecificationViolation
from repro.runtime.runner import run_until_quiescent


class TestRunnerEdges:
    def test_run_until_quiescent_alias(self):
        system = System(TrivialSetAgreement(n=2, k=2),
                        workloads=[["a"], ["b"]])
        execution = run_until_quiescent(system, RoundRobinScheduler())
        assert system.all_halted(execution.config)

    def test_monitor_exception_aborts_run(self):
        calls = []

        def bomb(config, event):
            calls.append(event)
            if len(calls) == 3:
                raise SpecificationViolation("TestInvariant", "boom")

        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        with pytest.raises(SpecificationViolation, match="TestInvariant"):
            run(system, RoundRobinScheduler(), monitors=[bomb])
        assert len(calls) == 3

    def test_zero_max_steps_returns_empty(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        execution = run(system, RoundRobinScheduler(), max_steps=0,
                        on_limit="return")
        assert execution.steps == 0
        assert execution.hit_step_limit

    def test_stop_checked_before_first_step(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        execution = run(system, RoundRobinScheduler(),
                        stop=lambda config, events: True)
        assert execution.steps == 0


class TestDynamicWorkloadGuards:
    def make_dynamic(self):
        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        return System(
            protocol, n=2,
            workload_fn=lambda pid, inv, outs: "v" if inv == 1 else None,
        )

    def test_schedule_export_rejected(self, tmp_path):
        from repro.trace import save_schedule

        system = self.make_dynamic()
        execution = run(system, RoundRobinScheduler(), max_steps=100_000)
        with pytest.raises(ConfigurationError, match="dynamic"):
            save_schedule(execution, tmp_path / "x.json")

    def test_certificates_rejected(self):
        from repro.lowerbounds.certificates import certificate_for_system

        system = self.make_dynamic()
        with pytest.raises(ConfigurationError, match="static"):
            certificate_for_system(system, [0, 1], claim="nope")

    def test_covering_rejected(self):
        from repro import RepeatedSetAgreement
        from repro.lowerbounds.covering import (
            CoveringFailure,
            covering_construction,
        )

        protocol = RepeatedSetAgreement(n=3, m=1, k=1, components=2)
        system = System(
            protocol, n=3,
            workload_fn=lambda pid, inv, outs: (
                f"p{pid}.{inv}" if inv <= 12 else None
            ),
        )
        with pytest.raises(CoveringFailure, match="static"):
            covering_construction(system, m=1, k=1)


class TestSweepLayoutFactory:
    def test_sweep_with_substrate_layouts(self):
        from repro.bench.sweep import sweep_protocol
        from repro.objects import implemented_snapshot_layout

        rows = sweep_protocol(
            lambda n, m, k: OneShotSetAgreement(n=n, m=m, k=k),
            [(3, 1, 1)],
            seeds=(1,),
            layout_factory=lambda protocol: implemented_snapshot_layout(
                protocol, "swmr"
            ),
            max_steps=1_000_000,
        )
        assert rows[0].registers == 3  # n SWMR registers


class TestProgressClosureSurvivorSets:
    def test_explicit_survivor_sets(self):
        from repro.explore import explore_progress_closure

        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        result = explore_progress_closure(
            system, m=1, max_configs=300, solo_budget=3_000,
            survivor_sets=[(0,)],
        )
        assert result.ok
