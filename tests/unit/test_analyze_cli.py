"""``repro analyze`` end to end: exit-code contract, flags, CI gate.

Exit codes are the documented contract (docs/api.md): 0 — clean;
1 — gating findings; 2 — an analysis pass itself failed; 130 — SIGINT
(covered by the shared dispatcher tests).  Also pins the lint-tool
satellite: pyproject must carry the ruff/mypy configuration CI runs.
"""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).parent.parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "analysis"
SRC = str(REPO / "src" / "repro")


# --------------------------------------------------------------------- #
# Exit code 0: clean trees
# --------------------------------------------------------------------- #

def test_shipped_tree_is_clean_strict(capsys):
    assert main(["analyze", "--strict", SRC]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out
    assert "determinism" in out and "footprint" in out
    # --strict implies the concurrency pass (the CI gate runs all three).
    assert "concurrency" in out


def test_concurrency_flag_runs_the_pass_without_strict(capsys):
    assert main(["analyze", "--concurrency", "--no-footprint", SRC]) == 0
    out = capsys.readouterr().out
    assert "concurrency" in out


def test_concurrency_gates_seeded_fixture_with_exit_1(capsys):
    code = main([
        "analyze", "--concurrency", "--all-rules", "--no-footprint",
        str(FIXTURES / "conc001_fork_global.py"),
    ])
    assert code == 1
    assert "[CONC001]" in capsys.readouterr().out


def test_stale_allow_note_never_gates(capsys):
    # CONC005 is note severity: reported, but exit 0 even under --strict.
    code = main([
        "analyze", "--concurrency", "--strict", "--all-rules",
        "--no-footprint", str(FIXTURES / "conc005_stale_allow.py"),
    ])
    assert code == 0
    assert "[CONC005]" in capsys.readouterr().out


def test_known_good_fixture_is_clean_under_all_rules(capsys):
    code = main([
        "analyze", "--all-rules", "--no-footprint",
        str(FIXTURES / "known_good.py"),
    ])
    assert code == 0


def test_rules_flag_prints_the_catalog(capsys):
    assert main(["analyze", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "MUT002", "FP001", "SAN101", "CONC001",
                 "CONC005"):
        assert rule in out


# --------------------------------------------------------------------- #
# Exit code 1: findings
# --------------------------------------------------------------------- #

def test_seeded_fixtures_gate_with_exit_1(capsys):
    code = main([
        "analyze", "--all-rules", "--no-footprint", str(FIXTURES),
    ])
    assert code == 1
    out = capsys.readouterr().out
    for rule in ("DET001", "DET002", "DET003", "DET005",
                 "MUT001", "MUT002"):
        assert f"[{rule}]" in out


def test_warnings_gate_only_under_strict(capsys):
    noslots = str(FIXTURES / "mut003_noslots.py")
    assert main(["analyze", "--all-rules", "--no-footprint", noslots]) == 0
    assert main([
        "analyze", "--all-rules", "--no-footprint", "--strict", noslots
    ]) == 1


def test_json_report_is_machine_readable(capsys):
    code = main([
        "analyze", "--all-rules", "--no-footprint", "--json",
        str(FIXTURES / "det001_time.py"),
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["DET001"]
    finding = payload["findings"][0]
    assert finding["severity"] == "error"
    assert finding["file"].endswith("det001_time.py")
    assert finding["line"] > 0


def test_every_seeded_rule_id_appears_in_ci_shaped_run(capsys):
    """The acceptance-criteria run: each fixture violation, by rule ID."""
    main(["analyze", "--all-rules", "--no-footprint", "--json",
          str(FIXTURES)])
    payload = json.loads(capsys.readouterr().out)
    reported = {f["rule"] for f in payload["findings"]}
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "MUT001", "MUT002", "MUT003"} <= reported


# --------------------------------------------------------------------- #
# Exit code 2: the pass itself failed
# --------------------------------------------------------------------- #

def test_unparseable_input_exits_2(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def half_a_function(:\n")
    assert main(["analyze", "--no-footprint", str(broken)]) == 2
    assert "error:" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# --sanitize smoke integration
# --------------------------------------------------------------------- #

def test_explore_sanitize_is_clean_and_serial(capsys):
    code = main([
        "explore", "--protocol", "oneshot", "--n", "3",
        "--sanitize", "--workers", "2", "--max-configs", "500",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "forces --workers 1" in captured.err
    assert "sanitizer" in captured.out


def test_run_sanitize_reports_and_stays_clean(capsys):
    code = main([
        "run", "--protocol", "oneshot", "--n", "3",
        "--scheduler", "round-robin", "--sanitize",
    ])
    assert code == 0
    assert "sanitizer" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Satellite: ruff/mypy wiring exists (and runs where available)
# --------------------------------------------------------------------- #

def test_pyproject_carries_lint_tool_config():
    if sys.version_info >= (3, 11):
        import tomllib
    else:  # pragma: no cover
        pytest.skip("tomllib requires Python 3.11")
    config = tomllib.loads((REPO / "pyproject.toml").read_text())
    assert "ruff" in config["tool"]
    assert "F" in config["tool"]["ruff"]["lint"]["select"]
    assert config["tool"]["mypy"]["packages"] == ["repro"]
    overrides = config["tool"]["mypy"]["overrides"]
    assert any(o["module"] == "repro.analysis.*" for o in overrides)
    assert config["project"]["optional-dependencies"]["lint"] == [
        "ruff", "mypy",
    ]


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed (CI installs it)")
def test_ruff_baseline_passes():  # pragma: no cover
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
