"""Unit tests for the causal-tracing primitives (repro.telemetry.tracing).

Trace identity is deterministic by construction — ids derive from the
run's command and attributes, worker span ids are pure functions of work
coordinates — so these tests pin exact values, not just shapes: the
golden stream tests downstream depend on these staying bit-stable.
"""

import pickle

from repro import telemetry
from repro.telemetry.tracing import (
    MAIN_LANE,
    SpanRecord,
    TraceContext,
    chunk_lane,
    chunk_span_id,
    derive_trace_id,
    job_lane,
    job_span_id,
)


class ListSink:
    """In-memory sink capturing events for assertions."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def close(self):
        pass


class TestTraceId:
    def test_deterministic_across_calls(self):
        a = derive_trace_id("explore", {"n": 3, "k": 2})
        b = derive_trace_id("explore", {"n": 3, "k": 2})
        assert a == b
        assert len(a) == 32 and int(a, 16) >= 0  # 128-bit hex

    def test_attr_order_does_not_matter(self):
        assert derive_trace_id("explore", {"n": 3, "k": 2}) == derive_trace_id(
            "explore", {"k": 2, "n": 3}
        )

    def test_different_workloads_get_different_traces(self):
        base = derive_trace_id("explore", {"n": 3})
        assert derive_trace_id("explore", {"n": 4}) != base
        assert derive_trace_id("faults", {"n": 3}) != base
        assert derive_trace_id("explore", None) != base

    def test_unserializable_attrs_fall_back_to_str(self):
        # attrs may carry arbitrary scalars; default=str keeps it total
        assert derive_trace_id("x", {"p": object()})  # does not raise


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext(trace_id="ab" * 16, parent="main:3", lane="worker-1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_defaults(self):
        ctx = TraceContext(trace_id="cd" * 16)
        assert ctx.parent is None
        assert ctx.lane == MAIN_LANE

    def test_from_wire_tolerates_missing_keys(self):
        ctx = TraceContext.from_wire({"trace": "ef" * 16})
        assert ctx.trace_id == "ef" * 16
        assert ctx.parent is None and ctx.lane == MAIN_LANE


class TestLaneNaming:
    def test_chunk_ids_are_pure_functions_of_coordinates(self):
        assert chunk_span_id(0, 0) == "w0.b0"
        assert chunk_span_id(3, 1) == "w1.b3"
        assert chunk_lane(1) == "worker-1"

    def test_job_ids_are_pure_functions_of_seq(self):
        assert job_span_id(7) == "job7.exec"
        assert job_lane(7) == "job-7"

    def test_distinct_coordinates_distinct_ids(self):
        ids = {chunk_span_id(b, c) for b in range(4) for c in range(4)}
        assert len(ids) == 16


class TestSpanRecord:
    def test_record_pickles_across_process_boundary(self):
        record = SpanRecord(
            name="explore.chunk", span_id="w0.b1", parent="main:2",
            lane="worker-0", attrs=(("chunk", 0),), t0=123.0, dur=0.5, pid=42,
        )
        assert pickle.loads(pickle.dumps(record)) == record

    def test_record_is_immutable(self):
        record = SpanRecord(name="x", span_id="a", parent=None, lane="main")
        try:
            record.name = "y"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("SpanRecord must be frozen")


class TestSessionIntegration:
    def setup_method(self):
        telemetry.reset()

    def teardown_method(self):
        telemetry.reset()

    def _session(self, sink):
        return telemetry.start(
            command="explore", mode="jsonl", sinks=[sink],
            attrs={"n": 3, "k": 2},
        )

    def test_run_start_carries_trace_id(self):
        sink = ListSink()
        session = self._session(sink)
        session.close(exit_code=0, verdict="ok")
        start = sink.events[0]
        assert start["attrs"]["trace"] == derive_trace_id(
            "explore", {"n": 3, "k": 2}
        )

    def test_nested_spans_record_parent_links(self):
        sink = ListSink()
        session = self._session(sink)
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert inner.parent == outer.span_id
        session.close(exit_code=0, verdict="ok")
        spans = {e["name"]: e for e in sink.events if e["type"] == "span"}
        assert spans["outer"]["attrs"]["span"] == "main:0"
        assert "parent" not in spans["outer"]["attrs"]
        assert spans["inner"]["attrs"]["parent"] == "main:0"
        assert spans["inner"]["attrs"]["lane"] == MAIN_LANE

    def test_span_ids_allocate_in_open_order(self):
        sink = ListSink()
        session = self._session(sink)
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        session.close(exit_code=0, verdict="ok")
        ids = [e["attrs"]["span"] for e in sink.events if e["type"] == "span"]
        assert ids == ["main:0", "main:1"]

    def test_emitted_worker_record_lands_with_lane_and_offset_ts(self):
        sink = ListSink()
        session = self._session(sink)
        record = SpanRecord(
            name="explore.chunk", span_id="w0.b0", parent="main:0",
            lane="worker-0", attrs=(("chunk", 0),),
            t0=session.epoch + 1.5, dur=0.25, pid=99,
        )
        telemetry.emit_span(record)
        telemetry.emit_span(None)  # tolerated no-op
        session.close(exit_code=0, verdict="ok")
        span = [e for e in sink.events if e["type"] == "span"][0]
        assert span["attrs"]["span"] == "w0.b0"
        assert span["attrs"]["lane"] == "worker-0"
        assert span["attrs"]["parent"] == "main:0"
        assert span["attrs"]["chunk"] == 0
        assert abs(span["vol"]["ts"] - 1.5) < 0.25
        assert span["vol"]["pid"] == 99
