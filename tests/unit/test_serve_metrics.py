"""Unit tests for the Prometheus exposition and the daemon's metrics op.

The exposition is a public scrape surface, so its format is linted by
``validate_exposition`` and pinned here: ``# TYPE`` lines, ``repro_``
prefix, ``_total`` on counters, cumulative histogram buckets.
"""

import threading

import pytest

from repro.cli import _first_bad_seq, _format_top_line, _top_endpoint
from repro.errors import ReproError
from repro.serve.protocol import VerifyJob
from repro.serve.server import ReproServer
from repro.telemetry.metrics import (
    prometheus_name,
    render_exposition,
    validate_exposition,
)

JOB = VerifyJob(mode="run", max_steps=500)


@pytest.fixture
def server(tmp_path):
    """A serial daemon with a live dispatcher thread."""
    srv = ReproServer(data_dir=tmp_path / "serve", serial=True,
                      queue_capacity=4)
    srv.start()
    exit_code = []
    thread = threading.Thread(
        target=lambda: exit_code.append(srv.serve_forever()), daemon=True
    )
    thread.start()
    yield srv
    srv.handle_request({"op": "shutdown"})
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert exit_code == [0]


class TestRenderExposition:
    def test_counters_get_total_suffix_and_type_lines(self):
        text = render_exposition({"serve.jobs_completed": 3}, {})
        assert "# TYPE repro_serve_jobs_completed_total counter" in text
        assert "repro_serve_jobs_completed_total 3" in text

    def test_gauges_keep_bare_name(self):
        text = render_exposition({}, {"serve.queue_depth": 2})
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 2" in text

    def test_histograms_render_cumulative_buckets(self):
        text = render_exposition(
            {}, {},
            {"explore.batch_seconds": {
                "bounds": [0.1, 1.0], "counts": [2, 1, 0],
                "total": 0.7, "count": 3,
            }},
        )
        assert '_bucket{le="0.1"} 2' in text
        assert '_bucket{le="1.0"} 3' in text  # cumulative, not per-bucket
        assert '_bucket{le="+Inf"} 3' in text
        assert "_sum 0.7" in text
        assert "_count 3" in text

    def test_rendered_text_validates_clean(self):
        text = render_exposition(
            {"a.ok": 1}, {"b.depth": 0},
            {"c.seconds": {"bounds": [1.0], "counts": [1, 0],
                           "total": 0.5, "count": 1}},
        )
        assert validate_exposition(text) == []

    def test_name_mangling(self):
        assert prometheus_name("serve.cache-hit ratio") == (
            "repro_serve_cache_hit_ratio"
        )
        assert prometheus_name("x.y", "_total") == "repro_x_y_total"


class TestValidateExposition:
    def test_empty_text_is_a_problem(self):
        assert validate_exposition("") != []

    def test_sample_without_type_flagged(self):
        problems = validate_exposition("repro_orphan 1\n")
        assert any("TYPE" in p for p in problems)

    def test_counter_without_total_suffix_flagged(self):
        text = "# TYPE repro_bad counter\nrepro_bad 1\n"
        assert validate_exposition(text) != []


class TestMetricsOp:
    def test_metrics_op_returns_valid_exposition(self, server):
        response = server.handle_request({"op": "metrics"})
        assert response["ok"] is True
        text = response["exposition"]
        assert validate_exposition(text) == []
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_uptime_seconds" in text

    def test_jobs_and_cache_show_up_in_scrape(self, server):
        server.handle_request({"op": "verify", "job": JOB.descriptor()})
        server.handle_request({"op": "verify", "job": JOB.descriptor()})
        text = server.handle_request({"op": "metrics"})["exposition"]
        assert "repro_serve_jobs_completed_total 1" in text
        assert "repro_serve_cache_hits_total 1" in text
        assert "repro_serve_cache_misses_total 1" in text
        assert "repro_serve_cache_hit_ratio 0.5" in text

    def test_per_outcome_counters(self, server):
        server.handle_request({"op": "verify", "job": JOB.descriptor()})
        text = server.handle_request({"op": "metrics"})["exposition"]
        assert "repro_serve_jobs_outcome_" in text


class TestTopHelpers:
    def test_format_top_line_renders_all_sections(self):
        line = _format_top_line({
            "endpoint": "127.0.0.1:9", "uptime_s": 12.4,
            "jobs_completed": 5,
            "queue": {"depth": 1, "capacity": 64, "in_flight": 2},
            "cache": {"hits": 3, "misses": 1},
            "supervisor": {"pool_rebuilds": 1, "degraded": False},
        })
        assert "127.0.0.1:9" in line
        assert "jobs 5" in line
        assert "queue 1/64" in line
        assert "cache 3h/1m 75%" in line
        assert "rebuilds 1" in line
        assert "DEGRADED" not in line

    def test_format_top_line_flags_degraded(self):
        line = _format_top_line({"supervisor": {"degraded": True}})
        assert "DEGRADED" in line

    def test_top_endpoint_parses_host_port(self):
        assert _top_endpoint("localhost:8123") == ("localhost", 8123)
        assert _top_endpoint(":8123") == ("127.0.0.1", 8123)

    def test_top_endpoint_rejects_garbage(self):
        with pytest.raises(ReproError, match="neither"):
            _top_endpoint("not-an-endpoint")

    def test_top_endpoint_reads_data_dir(self, tmp_path, server):
        host, port = _top_endpoint(str(server.data_dir))
        assert port == server.port

    def test_first_bad_seq_parses_line_prefixes(self):
        problems = [
            "stream is empty",
            "line 4: seq 9 != expected 3",
            "line 2: not JSON (Expecting value)",
        ]
        assert _first_bad_seq(problems) == 1
        assert _first_bad_seq(["stream is empty"]) is None
