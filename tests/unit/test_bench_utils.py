"""Unit tests for the benchmark harness utilities."""

import pytest

from repro import OneShotSetAgreement
from repro.bench.sweep import SweepRow, bounded_adversary_run, sweep_protocol
from repro.bench.tables import format_table
from repro.bench.workloads import (
    adversarial_inputs,
    clustered_inputs,
    distinct_inputs,
)
from repro.runtime.system import System


class TestWorkloads:
    def test_distinct_inputs_globally_unique(self):
        workloads = distinct_inputs(4, instances=3)
        flat = [v for w in workloads for v in w]
        assert len(flat) == len(set(flat)) == 12

    def test_clustered_inputs_cluster_count(self):
        workloads = clustered_inputs(6, clusters=2, instances=2)
        for t in range(2):
            values = {w[t] for w in workloads}
            assert len(values) == 2

    def test_clustered_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            clustered_inputs(4, clusters=0)

    def test_adversarial_inputs_one_dissenter_per_instance(self):
        workloads = adversarial_inputs(5, instances=3)
        for t in range(3):
            values = [w[t] for w in workloads]
            dissenters = [v for v in values if "dissent" in v]
            assert len(dissenters) == 1

    def test_adversarial_dissenter_rotates(self):
        workloads = adversarial_inputs(3, instances=3)
        dissenter_positions = [
            next(i for i, w in enumerate(workloads) if "dissent" in w[t])
            for t in range(3)
        ]
        assert dissenter_positions == [0, 1, 2]


class TestSweep:
    def test_rows_cover_grid(self):
        rows = sweep_protocol(
            lambda n, m, k: OneShotSetAgreement(n=n, m=m, k=k),
            [(3, 1, 1), (4, 1, 2)],
            seeds=(1,),
        )
        assert [(r.n, r.m, r.k) for r in rows] == [(3, 1, 1), (4, 1, 2)]
        assert all(isinstance(r, SweepRow) for r in rows)

    def test_distinct_outputs_never_exceed_k(self):
        rows = sweep_protocol(
            lambda n, m, k: OneShotSetAgreement(n=n, m=m, k=k),
            [(4, 2, 3)],
            seeds=(1, 2),
        )
        assert rows[0].distinct_outputs <= 3

    def test_bounded_adversary_run_completes_survivors(self):
        system = System(OneShotSetAgreement(n=3, m=1, k=1),
                        workloads=distinct_inputs(3))
        execution = bounded_adversary_run(system, survivors=[1], seed=2)
        assert system.decided_all(execution.config, [1])


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) == 1  # aligned

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)])
        assert "1.2" in text and "1.23456" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestBenchProvenance:
    """The benchmark conftest stamps provenance into every record (v2)."""

    def _conftest(self):
        import importlib.util
        import pathlib

        path = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_host_fingerprint_shape(self):
        conftest = self._conftest()
        host = conftest.host_fingerprint()
        assert isinstance(host["cpus"], int) and host["cpus"] >= 1
        assert isinstance(host["platform"], str) and host["platform"]
        assert isinstance(host["python"], str)

    def test_git_commit_is_short_and_memoized(self):
        conftest = self._conftest()
        commit = conftest._git_commit()
        assert commit == conftest._git_commit()
        assert commit == "unknown" or 4 <= len(commit) <= 16

    def test_schema_is_v2(self):
        assert self._conftest().BENCH_SCHEMA == 2
