"""Unit tests for the register-level snapshot implementations."""

import pytest

from repro import System, RandomScheduler, RoundRobinScheduler, run
from repro._types import BOT, Params
from repro.errors import ProtocolViolation
from repro.memory.layout import ImplementedBinding, MemoryLayout
from repro.memory.ops import ReadOp, ScanOp, UpdateOp, WriteOp
from repro.objects import (
    AnonymousDoubleCollectSnapshot,
    DoubleCollectSnapshot,
    SingleWriterSnapshot,
    WaitFreeSnapshot,
)
from repro.runtime.frames import ImplContext
from repro.spec.linearizability import (
    SnapshotScript,
    check_linearizable,
    extract_history,
)

ALL_IMPLS = [DoubleCollectSnapshot, AnonymousDoubleCollectSnapshot,
             WaitFreeSnapshot, SingleWriterSnapshot]


def layout_for(impl, name="A"):
    banks = impl.bank_specs(prefix=name)
    return MemoryLayout(
        tuple(banks),
        {name: ImplementedBinding(impl, tuple(b.name for b in banks))},
    )


def scripted_system(impl_cls, scripts, components=3, n=None):
    n = n if n is not None else len(scripts)
    impl = impl_cls(Params(components=components, n=n))
    protocol = SnapshotScript(scripts, components=components)
    return System(protocol, workloads=[[0]] * n, layout=layout_for(impl))


BASIC_SCRIPTS = [
    [UpdateOp("A", 0, "x"), ScanOp("A"), UpdateOp("A", 1, "y"), ScanOp("A")],
    [ScanOp("A"), UpdateOp("A", 1, "z"), ScanOp("A")],
    [UpdateOp("A", 2, "w"), ScanOp("A")],
]


class TestBankSpecs:
    def test_register_counts(self):
        params = Params(components=5, n=3)
        assert DoubleCollectSnapshot(params).bank_specs("A")[0].size == 5
        assert WaitFreeSnapshot(params).bank_specs("A")[0].size == 5
        assert SingleWriterSnapshot(params).bank_specs("A")[0].size == 3

    def test_bank_names_prefixed(self):
        params = Params(components=2, n=2)
        assert DoubleCollectSnapshot(params).bank_specs("X")[0].name.startswith("X")


class TestSequentialSemantics:
    """Solo (uncontended) operation must match the atomic object exactly."""

    @pytest.mark.parametrize("impl_cls", ALL_IMPLS)
    def test_solo_update_scan(self, impl_cls):
        scripts = [
            [UpdateOp("A", 1, "q"), ScanOp("A"), UpdateOp("A", 0, "p"),
             ScanOp("A")],
            [],  # a second, idle process (the object needs n >= 2)
        ]
        system = scripted_system(impl_cls, scripts, components=3, n=2)
        execution = run(system, RoundRobinScheduler(), max_steps=10_000)
        responses = execution.config.procs[0].outputs[0]
        assert responses[1] == (BOT, "q", BOT)
        assert responses[3] == ("p", "q", BOT)

    @pytest.mark.parametrize("impl_cls", ALL_IMPLS)
    def test_overwrite_same_component(self, impl_cls):
        scripts = [
            [UpdateOp("A", 0, 1), UpdateOp("A", 0, 2), ScanOp("A")],
            [],
        ]
        system = scripted_system(impl_cls, scripts, components=2, n=2)
        execution = run(system, RoundRobinScheduler(), max_steps=10_000)
        assert execution.config.procs[0].outputs[0][2] == (2, BOT)


class TestConcurrentLinearizability:
    @pytest.mark.parametrize("impl_cls", ALL_IMPLS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_interleavings_linearizable(self, impl_cls, seed):
        system = scripted_system(impl_cls, BASIC_SCRIPTS)
        execution = run(system, RandomScheduler(seed=seed), max_steps=100_000)
        history = extract_history(execution, BASIC_SCRIPTS)
        assert len(history) == 9
        assert check_linearizable(history, components=3) is not None


class TestFrameDiscipline:
    def test_rejects_foreign_ops(self):
        impl = DoubleCollectSnapshot(Params(components=2, n=2))
        ictx = ImplContext(pid=0, n=2, params=impl.params, banks=("A__regs",))
        with pytest.raises(ProtocolViolation):
            impl.begin(ictx, 0, ReadOp("A", 0))

    def test_update_is_single_write(self):
        impl = DoubleCollectSnapshot(Params(components=2, n=2))
        ictx = ImplContext(pid=1, n=2, params=impl.params, banks=("A__regs",))
        frame = impl.begin(ictx, 5, UpdateOp("A", 1, "v"))
        op = impl.pending(ictx, frame)
        assert isinstance(op, WriteOp)
        assert op.index == 1
        assert op.value == ("v", 1, 6)  # (value, pid, seq+1)
        frame = impl.apply(ictx, frame, None)
        result = impl.pending(ictx, frame)
        from repro.runtime.frames import Return

        assert isinstance(result, Return)
        assert result.persistent == 6  # sequence number advanced

    def test_anonymous_tags_have_no_pid(self):
        impl = AnonymousDoubleCollectSnapshot(Params(components=2, n=2))
        ictx = ImplContext(pid=1, n=2, params=impl.params, banks=("A__regs",),
                           anonymous=True)
        frame = impl.begin(ictx, 5, UpdateOp("A", 0, "v"))
        op = impl.pending(ictx, frame)
        assert op.value == ("v", 6)  # no pid anywhere

    def test_swmr_writes_only_own_register(self):
        """The SWMR discipline: every write of process p targets index p."""
        system = scripted_system(SingleWriterSnapshot, BASIC_SCRIPTS)
        execution = run(system, RandomScheduler(seed=5), max_steps=100_000)
        for event in execution.memory_events:
            if isinstance(event.op, WriteOp):
                assert event.op.index == event.pid


class TestScanRetry:
    def test_double_collect_scan_retries_under_interference(self):
        """A scan interleaved with a completing update must re-collect: its
        frame performs more than 2r reads."""
        scripts = [
            [ScanOp("A")],
            [UpdateOp("A", 0, "v")],
        ]
        system = scripted_system(DoubleCollectSnapshot, scripts, components=2)
        # p0 collects register 0, p1 then updates it, p0 must retry.
        from repro.sched import FixedSchedule

        # p0: invoke + first collect (2 reads); p1: invoke + its update's
        # write; p0: second collect (mismatch), third (stable), decide.
        schedule = [0, 0, 0, 1, 1] + [0] * 5
        execution = run(system, FixedSchedule(schedule), max_steps=100)
        reads_by_p0 = sum(
            1 for e in execution.memory_events
            if e.pid == 0 and isinstance(e.op, ReadOp)
        )
        assert reads_by_p0 > 4  # more than two plain collects of size 2
