"""Unit tests for parameter validation and the agreement base class."""

import pytest

from repro import validate_parameters
from repro.agreement.base import SetAgreementAutomaton
from repro.agreement.oneshot import OneShotSetAgreement
from repro.errors import ConfigurationError
from repro.runtime.automaton import Context
from tests.conftest import small_parameter_grid


class TestValidateParameters:
    def test_valid_grid_accepted(self):
        for n, m, k in small_parameter_grid():
            validate_parameters(n, m, k)  # must not raise

    def test_m_greater_than_k_cites_lemma1(self):
        with pytest.raises(ConfigurationError, match="Lemma 1"):
            validate_parameters(4, 3, 2)

    def test_k_at_least_n_cites_triviality(self):
        with pytest.raises(ConfigurationError, match="trivial"):
            validate_parameters(3, 1, 3)

    def test_m_zero_rejected(self):
        with pytest.raises(ConfigurationError, match="m >= 1"):
            validate_parameters(3, 0, 2)

    def test_single_process_rejected(self):
        with pytest.raises(ConfigurationError, match="2 processes"):
            validate_parameters(1, 1, 1)


class TestBaseClass:
    def test_parameter_properties(self):
        protocol = OneShotSetAgreement(n=6, m=2, k=4)
        assert (protocol.n, protocol.m, protocol.k) == (6, 2, 4)

    def test_describe_mentions_everything(self):
        text = OneShotSetAgreement(n=6, m=2, k=4).describe()
        assert "n=6" in text and "m=2" in text and "k=4" in text
        assert "r=6" in text  # n + 2m - k

    def test_zero_components_rejected(self):
        with pytest.raises(ConfigurationError, match="components"):
            OneShotSetAgreement(n=4, m=1, k=2, components=0)

    def test_nominal_components_abstract(self):
        class Incomplete(SetAgreementAutomaton):
            def default_layout(self):  # pragma: no cover
                raise NotImplementedError

            def begin(self, *a):  # pragma: no cover
                raise NotImplementedError

            def pending(self, *a):  # pragma: no cover
                raise NotImplementedError

            def apply(self, *a):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(NotImplementedError):
            Incomplete(n=3, m=1, k=1).nominal_components()


class TestContext:
    def test_identifier_for_eponymous(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=1)
        ctx = Context(pid=2, n=3, params=protocol.params)
        assert ctx.identifier == 2

    def test_params_reachable(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=2)
        ctx = Context(pid=0, n=3, params=protocol.params)
        assert ctx.params["k"] == 2
