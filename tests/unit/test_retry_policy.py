"""Unit tests for the shared backoff/retry policy (repro.durable.retry)."""

import pytest

from repro.durable import BackoffPolicy, DEFAULT_REBUILD_POLICY


class TestBackoffPolicy:
    def test_default_reproduces_historical_rebuild_schedule(self):
        """DEFAULT_REBUILD_POLICY must equal the engine's old hard-coded
        ladder min(0.05 * 2**attempt, 2.0) exactly, so extracting the
        policy changed no timing behavior."""
        for attempt in range(10):
            assert DEFAULT_REBUILD_POLICY.delay(attempt) == pytest.approx(
                min(0.05 * 2**attempt, 2.0)
            )

    def test_scaled_budget_matches_campaign_ladder(self):
        """scaled_budget must equal the campaign's old int(budget * b**a)."""
        policy = BackoffPolicy(max_retries=3, factor=2.0)
        for attempt in range(4):
            assert policy.scaled_budget(20_000, attempt) == int(
                20_000 * 2.0**attempt
            )
        odd = BackoffPolicy(factor=1.5)
        assert odd.scaled_budget(100, 3) == int(100 * 1.5**3)

    def test_attempts_is_retries_plus_one(self):
        assert list(BackoffPolicy(max_retries=2).attempts()) == [0, 1, 2]
        assert list(BackoffPolicy(max_retries=0).attempts()) == [0]

    def test_delay_caps_at_max_delay(self):
        policy = BackoffPolicy(base_delay=0.1, factor=10.0, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(5) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        a = BackoffPolicy(jitter=0.5, seed=7)
        b = BackoffPolicy(jitter=0.5, seed=7)
        c = BackoffPolicy(jitter=0.5, seed=8)
        delays_a = [a.delay(i) for i in range(6)]
        delays_b = [b.delay(i) for i in range(6)]
        delays_c = [c.delay(i) for i in range(6)]
        assert delays_a == delays_b  # same seed => same schedule
        assert delays_a != delays_c  # different seed => fanned out

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(
            base_delay=1.0, factor=1.0, max_delay=1.0, jitter=0.25, seed=1
        )
        for attempt in range(50):
            assert 0.75 <= policy.delay(attempt) <= 1.25

    def test_zero_jitter_is_exact(self):
        policy = BackoffPolicy(base_delay=0.2, factor=3.0, max_delay=10.0)
        assert policy.delay(2) == pytest.approx(0.2 * 9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)

    def test_sleep_returns_the_delay(self, monkeypatch):
        import repro.durable.retry as retry

        slept = []
        monkeypatch.setattr(retry.time, "sleep", slept.append)
        policy = BackoffPolicy(base_delay=0.25, factor=2.0, max_delay=9.0)
        assert policy.sleep(1) == pytest.approx(0.5)
        assert slept == [pytest.approx(0.5)]


class TestCallSites:
    def test_campaign_uses_shared_policy_for_budgets(self):
        """run_trial's retry budgets must follow the shared ladder: an
        inconclusive trial retried under growing budgets reports steps
        consistent with the scaled budget of its final attempt."""
        from repro.durable.retry import BackoffPolicy as Policy

        # the ladder the campaign quotes in --retry-budget docs
        assert [Policy(factor=2.0).scaled_budget(100, a) for a in range(4)] \
            == [100, 200, 400, 800]

    def test_frontier_uses_shared_rebuild_policy(self):
        """The explore engine's heal path sleeps per the shared default."""
        import inspect

        from repro.explore import frontier

        source = inspect.getsource(frontier._expand_batch)
        assert "DEFAULT_REBUILD_POLICY" in source
        assert "0.05 * 2**attempt" not in source  # the old copy is gone
