"""The concurrency-safety pass: rules, fixtures, and the shipped tree.

Three layers of claims:

* each seeded ``conc*`` fixture trips exactly its rule, and the
  false-positive shell (``conc_known_good.py``) trips nothing;
* the shipped ``src/repro`` tree is clean under the full CLI-equivalent
  flow (determinism usage threaded into the stale-allow audit);
* the acceptance mutations — dropping the journal's flock, or the
  ``__reduce__`` from :class:`~repro.explore.packed.PackedState` — make
  the pass fail, so the analyzer genuinely guards those disciplines.
"""

import pathlib
import shutil

import pytest

from repro.analysis.callgraph import CallGraph, module_name_for
from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.determinism import lint_paths

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures" / "analysis"
SRC = pathlib.Path(__file__).parent.parent.parent / "src" / "repro"


def conc_findings(name, **kwargs):
    kwargs.setdefault("all_rules", True)
    return analyze_concurrency([str(FIXTURES / name)], **kwargs).findings


# --------------------------------------------------------------------- #
# Detection: each seeded fixture trips exactly its rule
# --------------------------------------------------------------------- #

CONC_FIXTURES = [
    ("conc001_fork_global.py", "CONC001"),
    ("conc002_unpicklable.py", "CONC002"),
    ("conc003_bare_write.py", "CONC003"),
    ("conc004_busy_handler.py", "CONC004"),
    ("conc005_stale_allow.py", "CONC005"),
]


@pytest.mark.parametrize("fixture,rule", CONC_FIXTURES)
def test_seeded_fixture_trips_its_rule(fixture, rule):
    findings = conc_findings(fixture)
    assert any(f.rule == rule for f in findings), (
        f"{fixture} should trip {rule}, got {[f.rule for f in findings]}"
    )


@pytest.mark.parametrize("fixture,rule", CONC_FIXTURES)
def test_seeded_fixture_trips_only_its_rule(fixture, rule):
    findings = conc_findings(fixture)
    assert {f.rule for f in findings} == {rule}


def test_fork_global_finding_names_the_global():
    (finding,) = conc_findings("conc001_fork_global.py")
    assert "'_memo'" in finding.message
    assert "_expand" in finding.message


def test_pickle_finding_names_class_and_route():
    (finding,) = conc_findings("conc002_unpicklable.py")
    assert "Payload" in finding.message
    assert "pool submission" in finding.message


def test_busy_handler_flags_both_print_and_acquire():
    findings = conc_findings("conc004_busy_handler.py")
    problems = " / ".join(f.message for f in findings)
    assert "print" in problems
    assert "acquires a lock" in problems


def test_stale_allow_distinguishes_unknown_from_unused():
    findings = conc_findings("conc005_stale_allow.py")
    messages = sorted(f.message for f in findings)
    assert len(messages) == 2
    assert any("suppresses nothing" in m for m in messages)
    assert any("unknown or retired rule" in m for m in messages)
    assert all(f.severity == "note" for f in findings)


# --------------------------------------------------------------------- #
# Non-detection: the false-positive shells stay silent
# --------------------------------------------------------------------- #

def test_known_good_shells_are_clean():
    assert conc_findings("conc_known_good.py") == []


def test_justified_allow_is_consumed_not_stale():
    # conc_known_good.py carries a real CONC003 silenced by an allow; the
    # audit (which runs in the same call) must count it as used.
    findings = conc_findings("conc_known_good.py")
    assert not any(f.rule == "CONC005" for f in findings)


def test_determinism_usage_threads_into_the_audit():
    # suppressed.py's allows are consumed by the *determinism* pass; with
    # its usage threaded through, the audit must not call them stale.
    usage = {}
    lint_paths([str(FIXTURES / "suppressed.py")], all_rules=True, usage=usage)
    report = analyze_concurrency(
        [str(FIXTURES / "suppressed.py")], all_rules=True, usage=usage
    )
    assert report.findings == []


# --------------------------------------------------------------------- #
# The shipped tree: clean end to end (the CI gate's claim)
# --------------------------------------------------------------------- #

def test_shipped_tree_is_clean():
    usage = {}
    det = lint_paths([str(SRC)], usage=usage)
    conc = analyze_concurrency([str(SRC)], usage=usage)
    assert det.findings == []
    assert conc.findings == []
    assert conc.files_scanned > 50


# --------------------------------------------------------------------- #
# Entry-point discovery over the real tree
# --------------------------------------------------------------------- #

def test_call_graph_discovers_the_real_entry_points():
    import ast

    files = sorted(SRC.rglob("*.py"))
    graph = CallGraph.build([
        (p.as_posix(), ast.parse(p.read_text())) for p in files
    ])
    from repro.analysis.concurrency import _discover_entry_points

    entries = _discover_entry_points(graph)
    assert "repro.explore.frontier::_expand_chunk" in entries.pool_roots
    assert "repro.explore.frontier::_set_worker" in entries.pool_roots
    assert "repro.serve.supervisor::execute_job" in entries.pool_roots
    assert "repro.serve.supervisor::_init_worker" in entries.pool_roots
    assert any("_handler" in key for key in entries.signal_roots)

    # Reachability: the worker entry reaches the per-item expansion, and
    # the serve executor reaches the explore engine (its dispatch table).
    reach = graph.reachable(entries.pool_roots)
    assert "repro.explore.frontier::_expand_one" in reach
    assert "repro.serve.supervisor::_execute_explore" in reach


def test_module_name_for_handles_src_and_fixture_paths():
    assert module_name_for("src/repro/explore/frontier.py") == \
        "repro.explore.frontier"
    assert module_name_for("src/repro/explore/__init__.py") == "repro.explore"
    assert module_name_for(
        "tests/fixtures/analysis/conc001_fork_global.py"
    ) == "conc001_fork_global"


# --------------------------------------------------------------------- #
# Acceptance mutations: the analyzer guards the real disciplines
# --------------------------------------------------------------------- #

def _mutated_tree(tmp_path, mutate):
    dst = tmp_path / "repro"
    shutil.copytree(SRC, dst)
    mutate(dst)
    return analyze_concurrency([str(dst)])


def test_unmutated_copy_is_error_free(tmp_path):
    report = _mutated_tree(tmp_path, lambda dst: None)
    assert [f for f in report.findings if f.severity == "error"] == []


def test_removing_the_journal_flock_fails_the_pass(tmp_path):
    def drop_flock(dst):
        journal = dst / "durable" / "journal.py"
        source = journal.read_text()
        mutated = source.replace("_lock_or_raise(handle, self.path)",
                                 "pass", 1)
        assert mutated != source
        journal.write_text(mutated)

    report = _mutated_tree(tmp_path, drop_flock)
    errors = [f for f in report.findings if f.severity == "error"]
    assert {f.rule for f in errors} == {"CONC003"}
    assert any("journal.py" in f.file for f in errors)


def test_removing_packedstate_reduce_fails_the_pass(tmp_path):
    def drop_reduce(dst):
        packed = dst / "explore" / "packed.py"
        source = packed.read_text()
        mutated = source.replace(
            "    def __reduce__(self):\n"
            "        return (PackedState, (self.data,))",
            "    def _disabled_reduce(self):\n"
            "        return (PackedState, (self.data,))",
            1,
        )
        assert mutated != source
        packed.write_text(mutated)

    report = _mutated_tree(tmp_path, drop_reduce)
    errors = [f for f in report.findings if f.severity == "error"]
    assert {f.rule for f in errors} == {"CONC002"}
    assert any("PackedState" in f.message for f in errors)
