"""Unit tests for the generator-based procedural adapter."""

import pytest

from repro import RoundRobinScheduler, System, replay, run
from repro.errors import ProtocolViolation
from repro.memory.layout import snapshot_layout
from repro.memory.ops import ScanOp, UpdateOp
from repro.runtime.procedural import ProceduralProtocol


def publisher(ctx, value):
    yield UpdateOp("A", ctx.pid, value)
    scan = yield ScanOp("A")
    return tuple(scan)


def make_system(n=2):
    protocol = ProceduralProtocol(
        publisher, layout=snapshot_layout("A", n), name="publisher"
    )
    return System(protocol, workloads=[[f"v{i}"] for i in range(n)])


class TestBasicRuns:
    def test_runs_and_decides(self):
        system = make_system()
        execution = run(system, RoundRobinScheduler(), max_steps=100)
        assert execution.config.procs[0].outputs[0] == ("v0", "v1")

    def test_deterministic_replay_from_initial(self):
        first = run(make_system(), RoundRobinScheduler(), max_steps=100)
        again = replay(make_system(), first.schedule)
        assert again.outputs() == first.outputs()

    def test_decision_is_return_value(self):
        def const(ctx, value):
            return "fixed"
            yield  # pragma: no cover - makes it a generator

        protocol = ProceduralProtocol(const, layout=snapshot_layout("A", 1))
        system = System(protocol, workloads=[["x"]])
        execution = run(system, RoundRobinScheduler(), max_steps=10)
        assert execution.config.procs[0].outputs == ("fixed",)


class TestGuards:
    def test_peek_rejected(self):
        system = make_system()
        config = system.step(system.initial_configuration(), 0).config
        with pytest.raises(ProtocolViolation, match="peek"):
            system.peek(config, 0)

    def test_fork_detected(self):
        system = make_system()
        config = system.step(system.initial_configuration(), 0).config
        system.step(config, 0)  # advances the generator once
        # Stepping the *same* configuration again would replay the
        # generator advance; the version guard catches it.
        with pytest.raises(ProtocolViolation, match="forked"):
            system.step(config, 0)

    def test_yielding_garbage_rejected(self):
        def bad(ctx, value):
            yield "not-an-op"

        protocol = ProceduralProtocol(bad, layout=snapshot_layout("A", 1))
        system = System(protocol, workloads=[["x"]])
        with pytest.raises(ProtocolViolation, match="yielded"):
            run(system, RoundRobinScheduler(), max_steps=10)
