"""Regression tests: the telemetry flush survives termination paths.

The bug: a command dying on the SIGTERM path (exit 143) closed its
telemetry session from ``_dispatch``'s ``finally`` with the graceful
SIGTERM handler still installed but no watchdog armed — so a second
SIGTERM landing during the flush raised ``Terminated`` mid-write,
truncating ``events.jsonl`` (no ``run_end`` => schema-invalid) and
clobbering the already-computed exit code.  The fix arms a watchdog
mailbox around ``session.close``; these tests pin both properties: the
exit code stands, and the stream stays schema-valid.
"""

import argparse

import pytest

from repro import cli, telemetry
from repro.durable.watchdog import Terminated, deliver_sigterm
from repro.telemetry.schema import validate_stream
from repro.telemetry.sinks import JsonlSink


@pytest.fixture(autouse=True)
def _fresh_session():
    telemetry.reset()
    yield
    telemetry.reset()


def make_args(tmp_path, command="explore"):
    return argparse.Namespace(
        command=command, telemetry="jsonl",
        telemetry_dir=str(tmp_path / "telemetry"),
    )


class TestTerminationLeavesValidTelemetry:
    def test_sigterm_path_writes_run_end_terminated(self, tmp_path):
        """A handler unwinding via Terminated still flushes a complete
        stream whose run_end records exit 143."""
        args = make_args(tmp_path)

        def handler(args):
            raise Terminated()

        code = cli._dispatch(handler, args)
        assert code == 143
        assert validate_stream(args.telemetry_dir) == []
        import json

        events = [
            json.loads(line)
            for line in (tmp_path / "telemetry" / "events.jsonl")
            .read_text().splitlines()
        ]
        run_end = events[-1]
        assert run_end["type"] == "run_end"
        assert run_end["attrs"] == {"exit_code": 143,
                                    "verdict": "terminated"}

    def test_sigterm_during_flush_is_absorbed(self, tmp_path, monkeypatch):
        """A SIGTERM landing while session.close is writing must not
        truncate the stream or replace the exit code.  The malicious
        sink delivers the signal from inside the flush itself."""
        args = make_args(tmp_path)

        class SigtermMidFlush:
            def emit(self, event):
                if event["type"] == "metrics":
                    # the worst moment: metrics written, run_end not yet
                    deliver_sigterm()

            def close(self):
                pass

        real_open = cli._open_telemetry

        def open_with_evil_sink(args):
            session = real_open(args)
            session.sinks.append(SigtermMidFlush())
            return session

        monkeypatch.setattr(cli, "_open_telemetry", open_with_evil_sink)
        code = cli._dispatch(lambda args: 0, args)
        assert code == 0
        assert validate_stream(args.telemetry_dir) == []

    def test_sink_failure_on_close_cannot_change_the_exit_code(
        self, tmp_path, monkeypatch, capsys
    ):
        args = make_args(tmp_path)

        class ExplodingOnClose:
            def emit(self, event):
                pass

            def close(self):
                raise RuntimeError("disk full")

        real_open = cli._open_telemetry

        def open_with_broken_sink(args):
            session = real_open(args)
            session.sinks.append(ExplodingOnClose())
            return session

        monkeypatch.setattr(cli, "_open_telemetry", open_with_broken_sink)
        code = cli._dispatch(lambda args: 1, args)
        assert code == 1
        assert "close failed" in capsys.readouterr().err

    def test_serve_sigterm_subprocess_leaves_valid_stream(self, tmp_path):
        """End to end: SIGTERM a real `repro serve` daemon and check the
        stream it leaves behind validates (the satellite's acceptance:
        `repro report --check` passes on a 143 run)."""
        import os
        import signal
        import subprocess
        import sys
        import time

        telemetry_dir = tmp_path / "telemetry"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--data-dir", str(tmp_path / "serve"),
             "--telemetry", "jsonl",
             "--telemetry-dir", str(telemetry_dir)],
            env=env, cwd=os.getcwd(),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            endpoint = tmp_path / "serve" / "endpoint"
            deadline = time.monotonic() + 30
            while not endpoint.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert endpoint.exists(), "daemon never wrote its endpoint"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 143
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert validate_stream(telemetry_dir) == []

    def test_check_command_agrees(self, tmp_path):
        """`repro report --check` (the user-facing validator) accepts the
        stream a Terminated run leaves."""
        args = make_args(tmp_path)
        cli._dispatch(lambda args: (_ for _ in ()).throw(Terminated()), args)
        code = cli.main(["report", str(tmp_path / "telemetry"), "--check"])
        assert code == 0
