"""Unit tests for execution statistics and the progress checkers."""

import pytest

from repro import (
    OneShotSetAgreement,
    RepeatedSetAgreement,
    RoundRobinScheduler,
    SoloScheduler,
    System,
    run,
)
from repro.bench.workloads import distinct_inputs
from repro.errors import StepLimitExceeded
from repro.memory.layout import RegisterCoord
from repro.spec.progress import (
    check_bounded_progress,
    progress_matrix,
)
from repro.spec.stats import (
    execution_stats,
    per_process_decision_latency,
    registers_written,
)


def oneshot_execution(n=3, m=1, k=2):
    system = System(OneShotSetAgreement(n=n, m=m, k=k),
                    workloads=distinct_inputs(n))
    return run(system, RoundRobinScheduler(), max_steps=50_000)


class TestStats:
    def test_counts_are_consistent(self):
        execution = oneshot_execution()
        stats = execution_stats(execution)
        assert stats.total_steps == execution.steps
        assert stats.memory_steps == stats.write_steps + stats.scan_steps
        assert stats.invocations == 3
        assert stats.decisions == 3
        assert stats.total_steps == (
            stats.memory_steps + stats.invocations + stats.decisions
        )

    def test_registers_written_subset_of_provision(self):
        execution = oneshot_execution()
        written = registers_written(execution)
        r = execution.system.layout.register_count()
        assert written <= {RegisterCoord(0, i) for i in range(r)}
        assert stats_written_positive(written)

    def test_steps_per_decision(self):
        execution = oneshot_execution()
        stats = execution_stats(execution)
        assert stats.steps_per_decision == pytest.approx(
            stats.total_steps / stats.decisions
        )

    def test_no_decisions_infinite_ratio(self):
        system = System(OneShotSetAgreement(n=3, m=1, k=2),
                        workloads=distinct_inputs(3))
        execution = run(system, RoundRobinScheduler(), max_steps=4,
                        on_limit="return")
        assert execution_stats(execution).steps_per_decision == float("inf")

    def test_decision_latency_per_process(self):
        execution = oneshot_execution()
        latency = per_process_decision_latency(execution)
        assert set(latency) == {0, 1, 2}
        assert all(v >= 3 for v in latency.values())  # invoke+update+scan min

    def test_stats_row_shape(self):
        stats = execution_stats(oneshot_execution())
        assert len(stats.row()) == 8


def stats_written_positive(written):
    return len(written) > 0


class TestBoundedProgress:
    def test_survivor_finishes(self):
        system = System(OneShotSetAgreement(n=3, m=1, k=1),
                        workloads=distinct_inputs(3))
        execution = check_bounded_progress(system, survivors=[2],
                                           prelude_steps=20)
        assert system.decided_all(execution.config, [2])

    def test_underprovisioned_repeated_stalls(self):
        """Figure 4 squeezed below its nominal size can livelock two
        survivors — bounded progress detects it as a budget violation."""
        found_stall = False
        for seed in range(8):
            system = System(
                RepeatedSetAgreement(n=3, m=1, k=1, components=2),
                workloads=distinct_inputs(3, instances=2),
            )
            from repro.sched import RandomScheduler

            try:
                check_bounded_progress(
                    system, survivors=[0, 1], prelude_steps=40,
                    prelude=RandomScheduler(seed=seed), budget=4_000,
                )
            except StepLimitExceeded:
                found_stall = True
                break
        assert found_stall, (
            "expected at least one 2-survivor stall for the 1-obstruction-"
            "free algorithm (the guarantee stops at m=1)"
        )


class TestProgressMatrix:
    def test_all_singletons_pass_for_oneshot(self):
        report = progress_matrix(
            lambda: System(OneShotSetAgreement(n=3, m=1, k=1),
                           workloads=distinct_inputs(3)),
            n=3, m=1, seeds=(1, 2), prelude_steps=30, budget=20_000,
        )
        assert report.ok, report.summary()
        assert report.attempted == 6  # 3 singletons x 2 seeds

    def test_report_summary_strings(self):
        report = progress_matrix(
            lambda: System(OneShotSetAgreement(n=2, m=1, k=1),
                           workloads=distinct_inputs(2)),
            n=2, m=1, seeds=(1,), prelude_steps=10, budget=20_000,
        )
        assert "OK" in report.summary()
