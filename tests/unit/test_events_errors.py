"""Unit tests for event records and the exception hierarchy."""

import pytest

from repro import errors
from repro.memory.ops import ReadOp, UpdateOp
from repro.runtime.events import (
    DecideEvent,
    InvokeEvent,
    MemoryEvent,
    decided_value,
)


class TestEvents:
    def test_kinds(self):
        assert InvokeEvent(0, 1, "v").kind == "invoke"
        assert MemoryEvent(0, 1, ReadOp("A", 0), "x").kind == "memory"
        assert DecideEvent(0, 1, "v").kind == "decide"

    def test_hashable_and_comparable(self):
        a = MemoryEvent(0, 1, UpdateOp("A", 0, "v"), None)
        b = MemoryEvent(0, 1, UpdateOp("A", 0, "v"), None)
        assert a == b
        assert len({a, b}) == 1

    def test_reprs_mention_pid(self):
        assert "p3" in repr(InvokeEvent(3, 1, "v"))
        assert "p3" in repr(DecideEvent(3, 1, "v"))
        assert "p3" in repr(MemoryEvent(3, 1, ReadOp("A", 0), "x"))

    def test_frame_flag_in_repr(self):
        framed = MemoryEvent(0, 1, ReadOp("A", 0), "x", in_frame=True)
        assert "[frame]" in repr(framed)
        plain = MemoryEvent(0, 1, ReadOp("A", 0), "x")
        assert "[frame]" not in repr(plain)

    def test_decided_value_helper(self):
        assert decided_value(DecideEvent(0, 1, "v")) == "v"
        assert decided_value(InvokeEvent(0, 1, "v")) is None


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        errors.ConfigurationError,
        errors.MemoryError_,
        errors.NotEnabledError,
        errors.ScheduleExhaustedError,
        errors.StepLimitExceeded,
        errors.ProtocolViolation,
        errors.SpecificationViolation,
        errors.SearchInconclusive,
        errors.AnonymityViolation,
    ])
    def test_all_derive_from_repro_error(self, exc_cls):
        if exc_cls is errors.SpecificationViolation:
            instance = exc_cls("prop", "detail")
        else:
            instance = exc_cls("boom")
        assert isinstance(instance, errors.ReproError)

    def test_specification_violation_carries_fields(self):
        exc = errors.SpecificationViolation("k-Agreement", "too many")
        assert exc.property_name == "k-Agreement"
        assert exc.detail == "too many"
        assert "k-Agreement" in str(exc)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)
