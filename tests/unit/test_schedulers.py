"""Unit tests for the scheduler/adversary family."""

import pytest

from repro import (
    CrashScheduler,
    FixedSchedule,
    OneShotSetAgreement,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    System,
    TrivialSetAgreement,
    WriterPriorityScheduler,
    run,
)
from repro.sched import CyclicScheduler, EventuallyBoundedScheduler, phases
from repro.runtime.events import MemoryEvent
from repro.memory.ops import is_write_access


def trivial_system(n=3, per_proc=2):
    protocol = TrivialSetAgreement(n=n, k=n)
    return System(
        protocol,
        workloads=[[f"v{p}.{j}" for j in range(per_proc)] for p in range(n)],
    )


class TestFixedSchedule:
    def test_replays_exactly_then_stops(self):
        system = trivial_system()
        execution = run(system, FixedSchedule([0, 1, 2, 0]))
        assert execution.schedule == [0, 1, 2, 0]

    def test_reset_restores_position(self):
        scheduler = FixedSchedule([1, 0])
        system = trivial_system(n=2)
        run(system, scheduler)
        execution = run(system, scheduler)  # run() calls reset
        assert execution.schedule == [1, 0]


class TestRoundRobin:
    def test_cycles_fairly(self):
        system = trivial_system(n=3, per_proc=1)
        execution = run(system, RoundRobinScheduler())
        assert execution.schedule[:6] == [0, 1, 2, 0, 1, 2]

    def test_subset_restriction(self):
        system = trivial_system(n=4)
        execution = run(system, RoundRobinScheduler(subset=[1, 3]))
        assert set(execution.schedule) == {1, 3}

    def test_skips_halted_processes(self):
        system = trivial_system(n=2, per_proc=1)
        execution = run(system, RoundRobinScheduler())
        # After p0 halts (2 steps), only p1 is scheduled.
        assert execution.schedule.count(0) == 2
        assert execution.schedule.count(1) == 2


class TestSolo:
    def test_schedules_only_target(self):
        system = trivial_system(n=3)
        execution = run(system, SoloScheduler(2))
        assert set(execution.schedule) == {2}

    def test_stops_when_target_halts(self):
        system = trivial_system(n=3, per_proc=1)
        execution = run(system, SoloScheduler(0))
        assert execution.steps == 2  # invoke + decide
        assert not system.enabled(execution.config, 0)


class TestRandom:
    def test_deterministic_per_seed(self):
        a = run(trivial_system(), RandomScheduler(seed=5)).schedule
        b = run(trivial_system(), RandomScheduler(seed=5)).schedule
        assert a == b

    def test_different_seeds_differ(self):
        a = run(trivial_system(n=4, per_proc=4), RandomScheduler(seed=1)).schedule
        b = run(trivial_system(n=4, per_proc=4), RandomScheduler(seed=2)).schedule
        assert a != b

    def test_subset(self):
        execution = run(
            trivial_system(n=4), RandomScheduler(seed=3, subset=[0, 2])
        )
        assert set(execution.schedule) <= {0, 2}

    def test_weights_bias(self):
        execution = run(
            trivial_system(n=2, per_proc=8),
            RandomScheduler(seed=4, weights=[100.0, 1.0]),
        )
        # p0 should dominate the early schedule.
        early = execution.schedule[:8]
        assert early.count(0) > early.count(1)

    def test_zero_weights_fall_back_to_uniform(self):
        execution = run(
            trivial_system(n=2), RandomScheduler(seed=4, weights=[0.0, 0.0])
        )
        assert set(execution.schedule) == {0, 1}


class TestEventuallyBounded:
    def test_tail_schedules_only_survivors(self):
        system = trivial_system(n=4, per_proc=3)
        scheduler = EventuallyBoundedScheduler(survivors=[3], prelude_steps=5)
        execution = run(system, scheduler)
        assert set(execution.schedule[5:]) == {3}

    def test_empty_survivors_rejected(self):
        with pytest.raises(ValueError):
            EventuallyBoundedScheduler(survivors=[], prelude_steps=1)

    def test_survivor_completes_under_contention_prelude(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=1)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        scheduler = EventuallyBoundedScheduler(
            survivors=[1], prelude_steps=30, prelude=RandomScheduler(seed=9)
        )
        execution = run(system, scheduler, max_steps=50_000)
        assert execution.config.procs[1].outputs


class TestCrash:
    def test_crashed_pid_takes_no_steps_after_crash(self):
        system = trivial_system(n=3, per_proc=5)
        execution = run(system, CrashScheduler(crashes={0: 4}))
        for index, pid in enumerate(execution.schedule):
            if pid == 0:
                assert index < 4

    def test_all_crashed_ends_run(self):
        system = trivial_system(n=2, per_proc=5)
        execution = run(system, CrashScheduler(crashes={0: 0, 1: 0}))
        assert execution.steps == 0

    def test_rogue_base_scheduler_fails_loudly(self):
        """Regression: a base returning a pid outside the offered live set
        used to be silently re-asked in a loop that could never terminate
        for a deterministic base; it must raise instead."""
        from repro.errors import NotEnabledError

        class RogueScheduler:
            def choose(self, config, system, enabled, step_index):
                return 0  # pid 0 is crashed below, so never offered

            def reset(self):
                pass

        system = trivial_system(n=2, per_proc=2)
        scheduler = CrashScheduler(crashes={0: 0}, base=RogueScheduler())
        with pytest.raises(NotEnabledError):
            run(system, scheduler)

    def test_restart_resumes_crashed_process(self):
        system = trivial_system(n=2, per_proc=3)
        execution = run(
            system, CrashScheduler(crashes={0: 2}, restarts={0: 6})
        )
        steps_of_0 = [i for i, pid in enumerate(execution.schedule)
                      if pid == 0]
        assert all(i < 2 or i >= 6 for i in steps_of_0)
        assert any(i >= 6 for i in steps_of_0)  # it did come back
        assert execution.config.procs[0].outputs  # and finished its workload

    def test_restart_fast_forwards_when_everyone_else_is_done(self):
        # Crash pid 0 immediately and restart it far beyond the number of
        # steps pid 1 needs: the run must not end at pid 1's quiescence but
        # fast-forward to pid 0's restart and let it finish.
        system = trivial_system(n=2, per_proc=2)
        execution = run(
            system, CrashScheduler(crashes={0: 0}, restarts={0: 10_000})
        )
        assert execution.config.procs[0].outputs
        assert execution.config.procs[1].outputs

    def test_restart_before_crash_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CrashScheduler(crashes={0: 10}, restarts={0: 5})

    def test_restart_without_crash_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CrashScheduler(crashes={0: 10}, restarts={1: 20})


class TestWriterPriority:
    def test_prefers_writers(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=2)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        execution = run(
            system, WriterPriorityScheduler(), max_steps=60, on_limit="return"
        )
        # Skip invocations; among memory steps, writes should be frequent
        # early because the scheduler chases poised writers.
        memory = [e for e in execution.events if isinstance(e, MemoryEvent)]
        writes = [e for e in memory if is_write_access(e.op)]
        assert len(writes) >= len(memory) // 2


class TestCyclic:
    def test_pattern_repeats(self):
        system = trivial_system(n=2, per_proc=4)
        execution = run(system, CyclicScheduler([0, 0, 1]))
        assert execution.schedule[:6] == [0, 0, 1, 0, 0, 1]

    def test_skips_disabled_entries(self):
        system = trivial_system(n=2, per_proc=1)
        execution = run(system, CyclicScheduler([0, 1]))
        assert execution.schedule == [0, 1, 0, 1]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            CyclicScheduler([])

    def test_phases_helper(self):
        assert phases([0] * 2, [1]) == (0, 0, 1)
