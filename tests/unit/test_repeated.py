"""Unit tests for the Figure 4 repeated algorithm."""

import pytest

from repro import RepeatedSetAgreement, System, RandomScheduler, run, run_solo
from repro._types import BOT
from repro.agreement.repeated import (
    DECIDED,
    SCAN,
    UPDATE,
    RepeatedPersistent,
    RepeatedState,
    effectively_bot,
    first_duplicate_t_tuple,
    is_instance_tuple,
)
from repro.runtime.automaton import Context, Decide
from repro.sched import EventuallyBoundedScheduler
from repro.spec import assert_execution_safe


def make(n=3, m=1, k=1, components=None):
    return RepeatedSetAgreement(n=n, m=m, k=k, components=components)


def ctx_for(protocol, pid=0):
    return Context(pid=pid, n=protocol.n, params=protocol.params)


def entry(value, pid, t, history=()):
    return (value, pid, t, tuple(history))


class TestHelpers:
    def test_is_instance_tuple(self):
        assert is_instance_tuple(entry("v", 0, 3), 3)
        assert not is_instance_tuple(entry("v", 0, 2), 3)
        assert not is_instance_tuple(BOT, 3)

    def test_effectively_bot(self):
        assert effectively_bot(BOT, 2)
        assert effectively_bot(entry("v", 0, 1), 2)  # lower instance = ⊥
        assert not effectively_bot(entry("v", 0, 2), 2)
        assert not effectively_bot(entry("v", 0, 3), 2)

    def test_first_duplicate_only_matches_instance(self):
        scan = (entry("v", 0, 1), entry("v", 0, 1), entry("w", 1, 2),
                entry("w", 1, 2))
        assert first_duplicate_t_tuple(scan, 2) == 2
        assert first_duplicate_t_tuple(scan, 1) == 0
        assert first_duplicate_t_tuple(scan, 3) is None


class TestLifecycle:
    def test_persistent_initial(self):
        protocol = make()
        persistent = protocol.initial_persistent(ctx_for(protocol))
        assert persistent == RepeatedPersistent(i=0, t=0, history=())

    def test_begin_increments_instance(self):
        protocol = make()
        (state,) = protocol.begin(
            ctx_for(protocol), RepeatedPersistent(i=2, t=3, history=("a", "b", "c")),
            "v", 4
        )
        assert state.t == 4
        assert state.i == 2  # location persists across invocations

    def test_local_shortcut_lines_9_10(self):
        """history already covers this instance -> immediate decision, no
        memory operations."""
        protocol = make()
        persistent = RepeatedPersistent(i=1, t=1, history=("x", "y"))
        (state,) = protocol.begin(ctx_for(protocol), persistent, "v", 2)
        assert state.phase == DECIDED
        action = protocol.pending(ctx_for(protocol), 0, state)
        assert isinstance(action, Decide) and action.output == "y"

    def test_decide_persists_location_and_history(self):
        protocol = make()
        state = RepeatedState(pref="v", i=2, t=1, history=("v",),
                              phase=DECIDED, decision="v")
        action = protocol.pending(ctx_for(protocol), 0, state)
        assert action.persistent == RepeatedPersistent(i=2, t=1, history=("v",))


class TestScanRules:
    def test_higher_instance_adoption_lines_15_16(self):
        protocol = make()
        state = RepeatedState(pref="v", i=0, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1, 3, ("a", "b")), BOT, BOT)
        new = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert new.phase == DECIDED
        assert new.decision == "a"  # t-th (=1st) value of the history
        assert new.history == ("a", "b")

    def test_decide_lines_17_21(self):
        protocol = make(n=3, m=1, k=1)  # r = 4
        state = RepeatedState(pref="v", i=0, t=2, history=("a",), phase=SCAN)
        scan = (entry("w", 1, 2, ("a",)),) * 4
        new = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert new.phase == DECIDED
        assert new.decision == "w"
        assert new.history == ("a", "w")

    def test_lower_instance_blocks_decision(self):
        protocol = make(n=3, m=1, k=1)
        state = RepeatedState(pref="v", i=0, t=2, history=("a",), phase=SCAN)
        scan = (entry("w", 1, 2), entry("w", 1, 2), entry("w", 1, 2),
                entry("old", 2, 1))
        new = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert new.phase != DECIDED

    def test_adopt_lines_22_24(self):
        protocol = make(n=3, m=1, k=1)
        ctx = ctx_for(protocol, pid=0)
        state = RepeatedState(pref="v", i=3, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1, 1), entry("w", 1, 1), entry("x", 2, 1),
                entry("v", 0, 1))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "w" and new.i == 3

    def test_lower_instance_entry_treated_as_bot_blocks_adoption(self):
        protocol = make(n=3, m=1, k=1)
        ctx = ctx_for(protocol, pid=0)
        state = RepeatedState(pref="v", i=3, t=2, history=("h",), phase=SCAN)
        scan = (entry("w", 1, 2), entry("w", 1, 2), entry("stale", 2, 1),
                entry("v", 0, 2, ("h",)))
        new = protocol.apply(ctx, 0, state, scan)
        # position 2 is effectively ⊥ -> adoption blocked -> advance.
        assert new.pref == "v" and new.i == 0  # (3+1) mod 4

    def test_self_valued_duplicate_advances(self):
        protocol = make(n=3, m=1, k=1)
        ctx = ctx_for(protocol, pid=0)
        state = RepeatedState(pref="v", i=3, t=1, history=(), phase=SCAN)
        scan = (entry("v", 1, 1), entry("v", 1, 1), entry("x", 2, 1),
                entry("v", 0, 1))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "v" and new.i == 0


class TestEndToEnd:
    def test_solo_runs_all_instances_and_keeps_history(self):
        system = System(make(), workloads=[["a1", "a2", "a3"], ["b1"], ["c1"]])
        execution = run_solo(system, 0)
        assert execution.config.procs[0].outputs == ("a1", "a2", "a3")
        assert execution.config.procs[0].persistent.history == ("a1", "a2", "a3")

    def test_laggard_adopts_history_wholesale(self):
        system = System(
            make(), workloads=[[f"a{t}" for t in range(3)],
                               [f"b{t}" for t in range(3)], ["c0"]]
        )
        lead = run_solo(system, 0)
        follow = run_solo(system, 1, initial=lead.config)
        assert follow.config.procs[1].outputs == lead.config.procs[0].outputs

    def test_consensus_across_instances_under_adversary(self):
        for seed in (3, 4):
            system = System(
                make(n=3, m=1, k=1),
                workloads=[[f"p{i}c{t}" for t in range(3)] for i in range(3)],
            )
            scheduler = EventuallyBoundedScheduler(
                survivors=[2], prelude_steps=70, prelude=RandomScheduler(seed=seed)
            )
            execution = run(system, scheduler, max_steps=100_000)
            assert_execution_safe(execution, k=1)
            for t in (1, 2, 3):
                assert len(set(execution.instance_outputs(t))) <= 1

    def test_m2_survivors_all_finish(self):
        system = System(
            make(n=4, m=2, k=2),
            workloads=[[f"p{i}c{t}" for t in range(2)] for i in range(4)],
        )
        scheduler = EventuallyBoundedScheduler(
            survivors=[0, 3], prelude_steps=90, prelude=RandomScheduler(seed=8)
        )
        execution = run(system, scheduler, max_steps=200_000)
        assert_execution_safe(execution, k=2)
        assert system.decided_all(execution.config, [0, 3])
