"""Unit tests for violation certificates."""

import pytest

from repro import OneShotSetAgreement, RepeatedSetAgreement, System
from repro.bench.workloads import distinct_inputs
from repro.errors import ConfigurationError, SpecificationViolation
from repro.explore import explore_safety
from repro.lowerbounds import covering_construction
from repro.lowerbounds.certificates import (
    ViolationCertificate,
    certificate_for_system,
    load_certificate,
    save_certificate,
    verify_certificate,
)


def covering_certificate():
    system = System(
        RepeatedSetAgreement(n=3, m=1, k=1, components=2),
        workloads=distinct_inputs(3, instances=12),
    )
    result = covering_construction(system, m=1, k=1)
    return certificate_for_system(
        system, result.schedule,
        claim="Theorem 2: Figure 4 with 2 registers violates consensus",
    )


def explorer_certificate():
    system = System(
        OneShotSetAgreement(n=2, m=1, k=1, components=2),
        workloads=distinct_inputs(2),
    )
    result = explore_safety(system, k=1)
    witness = result.safety_violations[0]
    return certificate_for_system(
        system, witness.schedule,
        claim="explorer witness: Figure 3 with 2 components, n=2",
    )


class TestVerification:
    def test_covering_certificate_verifies(self):
        violations = verify_certificate(covering_certificate())
        assert violations

    def test_explorer_certificate_verifies(self):
        violations = verify_certificate(explorer_certificate())
        assert violations

    def test_tampered_schedule_fails(self):
        certificate = explorer_certificate()
        tampered = ViolationCertificate(
            **{**certificate.__dict__, "schedule": certificate.schedule[:2]}
        )
        with pytest.raises(SpecificationViolation, match="CertificateCheck"):
            verify_certificate(tampered)

    def test_unknown_protocol_rejected(self):
        certificate = ViolationCertificate(
            protocol="nonsense", n=2, m=1, k=1, components=2,
            workloads=(("a",), ("b",)), schedule=(0,), claim="bogus",
        )
        with pytest.raises(ConfigurationError):
            verify_certificate(certificate)


class TestRoundtrip:
    def test_save_load_verify(self, tmp_path):
        certificate = covering_certificate()
        path = tmp_path / "cert.json"
        save_certificate(certificate, path)
        loaded = load_certificate(path)
        assert loaded == certificate
        assert verify_certificate(loaded)

    def test_format_version_checked(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 42}))
        with pytest.raises(ConfigurationError):
            load_certificate(path)
