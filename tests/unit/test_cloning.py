"""Unit tests for the Section 5 clone machinery."""

import pytest

from repro import OneShotSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.lowerbounds.bounds import lemma9_process_requirement
from repro.lowerbounds.cloning import (
    GlueFailure,
    alpha_execution,
    lemma9_glue,
    register_sequence,
    solo_trace,
)
from repro.runtime.runner import replay, run_solo


def anon_factory(k=1, r=2):
    def factory(n):
        return AnonymousOneShotSetAgreement(n=n, m=1, k=k, components=r)

    return factory


class TestRegisterSequence:
    def test_orders_by_first_write(self):
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=3)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        execution = run_solo(system, 0)
        coords = register_sequence(execution)
        assert [c.index for c in coords] == [0, 1, 2]

    def test_deduplicates(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=2)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        execution = run_solo(system, 0)
        coords = register_sequence(execution)
        assert len(coords) == len(set(coords))


class TestAlphaExecution:
    def test_solo_alpha(self):
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=3)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        execution = alpha_execution(system, [1], ["b"])
        assert execution is not None
        assert "b" in execution.instance_outputs(1)

    def test_group_alpha_all_values_output(self):
        from repro import RepeatedSetAgreement

        protocol = RepeatedSetAgreement(n=4, m=2, k=2)
        system = System(protocol, workloads=[[f"v{i}"] for i in range(4)])
        execution = alpha_execution(system, [0, 2], ["v0", "v2"])
        assert execution is not None
        outputs = set(execution.instance_outputs(1))
        assert {"v0", "v2"} <= outputs

    def test_solo_alpha_failure_returns_none(self):
        """A solo run cannot output a value it did not propose."""
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=3)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        assert alpha_execution(system, [1], ["zzz"]) is None


class TestSoloTrace:
    def test_shape_has_invoke_and_decide(self):
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=2)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        trace = solo_trace(system, 0)
        kinds = [kind for kind, _ in trace.shape]
        assert kinds[0] == "invoke"
        assert kinds[-1] == "decide"
        assert kinds.count("write") == 2

    def test_first_and_last_write_indices(self):
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=2)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        trace = solo_trace(system, 0)
        f0 = trace.first_write_index(0)
        f1 = trace.first_write_index(1)
        assert f0 < f1
        assert trace.last_write_index_before(0, f1) == f0

    def test_input_independence(self):
        protocol = AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=2)
        system = System(protocol, workloads=[["x"], ["yy"], ["zzz"]])
        shapes = {solo_trace(system, pid).shape for pid in range(3)}
        assert len(shapes) == 1


class TestLemma9Glue:
    def test_process_count_matches_formula(self):
        result = lemma9_glue(anon_factory(k=1, r=2), k=1, inputs=["a", "b"])
        assert result.n_processes == lemma9_process_requirement(1, 1, 2)

    def test_violation_certified_and_replayable(self):
        result = lemma9_glue(anon_factory(k=1, r=2), k=1, inputs=["a", "b"])
        assert result.success
        assert set(result.distinct_outputs) == {"a", "b"}
        # Rebuild the very system and replay the schedule from scratch.
        protocol = anon_factory(k=1, r=2)(result.n_processes)
        workloads = []
        per_group = 1 + result.clones_per_group
        for g in range(2):
            workloads.extend([[["a", "b"][g]]] * per_group)
        system = System(protocol, workloads=workloads)
        execution = replay(system, result.schedule)
        assert len(set(execution.instance_outputs(1))) == 2

    def test_needs_distinct_inputs(self):
        with pytest.raises(GlueFailure, match="distinct"):
            lemma9_glue(anon_factory(), k=1, inputs=["same", "same"])

    def test_k2_uses_three_groups(self):
        result = lemma9_glue(
            anon_factory(k=2, r=2), k=2, inputs=["a", "b", "c"]
        )
        assert result.success
        assert len(result.distinct_outputs) == 3
