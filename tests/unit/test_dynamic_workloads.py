"""Unit tests for dynamic workloads and the adaptive universal construction."""

import pytest

from repro import (
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    RoundRobinScheduler,
    System,
    TrivialSetAgreement,
    run,
)
from repro.agreement.universal import ReplicatedStateMachine
from repro.errors import ConfigurationError
from repro.spec import assert_execution_safe


class TestSystemConstruction:
    def test_exactly_one_workload_source_required(self):
        protocol = TrivialSetAgreement(n=2, k=2)
        with pytest.raises(ConfigurationError, match="exactly one"):
            System(protocol)
        with pytest.raises(ConfigurationError, match="exactly one"):
            System(protocol, workloads=[["a"], ["b"]],
                   workload_fn=lambda pid, inv, outs: None)

    def test_workload_fn_requires_n(self):
        protocol = TrivialSetAgreement(n=2, k=2)
        with pytest.raises(ConfigurationError, match="requires explicit n"):
            System(protocol, workload_fn=lambda pid, inv, outs: None)


class TestDynamicRuns:
    def test_fixed_count_via_fn(self):
        protocol = TrivialSetAgreement(n=2, k=2)

        def two_each(pid, invocation, outputs):
            return f"p{pid}.{invocation}" if invocation <= 2 else None

        system = System(protocol, n=2, workload_fn=two_each)
        execution = run(system, RoundRobinScheduler())
        assert execution.config.procs[0].outputs == ("p0.1", "p0.2")
        assert execution.config.procs[1].outputs == ("p1.1", "p1.2")

    def test_fn_sees_prior_outputs(self):
        """The next proposal can depend on what was decided so far."""
        protocol = RepeatedSetAgreement(n=2, m=1, k=1)

        def echo_last(pid, invocation, outputs):
            if invocation > 3:
                return None
            if outputs:
                return f"seen:{outputs[-1]}"
            return f"fresh:{pid}"

        system = System(protocol, n=2, workload_fn=echo_last)
        execution = run(system, RoundRobinScheduler(), max_steps=100_000)
        assert_execution_safe(execution, k=1)
        for proc in execution.config.procs:
            assert len(proc.outputs) == 3

    def test_dynamic_system_still_replayable(self):
        from repro import replay

        protocol = OneShotSetAgreement(n=3, m=1, k=2)

        def fn(pid, invocation, outputs):
            return f"v{pid}" if invocation == 1 else None

        def build():
            return System(protocol, n=3, workload_fn=fn)

        original = run(build(), RandomScheduler(seed=6), max_steps=100_000)
        again = replay(build(), original.schedule)
        assert again.outputs() == original.outputs()

    def test_static_consumers_reject_dynamic_systems(self):
        from repro.explore import explore_safety

        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        system = System(
            protocol, n=2,
            workload_fn=lambda pid, inv, outs: "v" if inv == 1 else None,
        )
        with pytest.raises(ValueError, match="static workloads"):
            explore_safety(system, k=1)


class TestAdaptiveUniversal:
    def commands(self):
        return [
            [("add", 1), ("add", 2)],
            [("add", 10), ("add", 20)],
            [("add", 100), ("add", 200)],
        ]

    def make(self):
        return ReplicatedStateMachine(
            n=3, apply_fn=lambda s, c: s + c[1], initial_state=0
        )

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_no_command_is_ever_lost(self, seed):
        result = self.make().run_adaptive(
            self.commands(), scheduler=RandomScheduler(seed=seed)
        )
        flat = [c for cs in self.commands() for c in cs]
        assert sorted(result.log, key=repr) == sorted(flat, key=repr)
        assert result.rejected == ()
        assert result.final_state == 333

    def test_log_has_no_duplicates(self):
        result = self.make().run_adaptive(self.commands())
        assert len(result.log) == len(set(result.log))

    def test_uneven_command_counts(self):
        rsm = self.make()
        commands = [[("add", 1)], [("add", 10), ("add", 20), ("add", 30)], []]
        result = rsm.run_adaptive(commands)
        assert result.final_state == 61
        assert len(result.log) == 4
