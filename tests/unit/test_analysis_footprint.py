"""The static footprint checker: Figure 1, proven symbolically.

The headline test derives each family's register footprint from source
and matches it against the paper's formula *as a polynomial* — not at
sampled parameters.  Concrete cross-checks then pin the symbolic result
to the operational accounting (``MemoryLayout.register_count``) and the
Figure 1 table, and the seeded fixture families must each trip their
FP rule.
"""

import pathlib

import pytest

from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousRepeatedSetAgreement,
)
from repro.agreement.oneshot import OneShotSetAgreement
from repro.agreement.repeated import RepeatedSetAgreement
from repro.analysis.footprint import (
    DEFAULT_FAMILIES,
    FamilySpec,
    check_family,
    check_footprints,
    family_footprints,
    nonnegative_on_regime,
    p_add,
    p_eval,
    p_mul,
    p_render,
    p_sub,
    poly,
)

REPO = pathlib.Path(__file__).parent.parent.parent
FIXDIR = str(REPO / "tests")

EXPECTED = {
    "oneshot-figure3": poly(n=1, m=2, k=-1),
    "repeated-figure4": poly(n=1, m=2, k=-1),
    "anonymous-figure5": p_add(
        p_mul(poly(m=1, const=1), poly(n=1, k=-1)),
        p_mul(poly(m=1), poly(m=1)),
        poly(const=1),
    ),
    "anonymous-oneshot": p_add(
        p_mul(poly(m=1, const=1), poly(n=1, k=-1)),
        p_mul(poly(m=1), poly(m=1)),
    ),
}

PROTOCOLS = {
    "oneshot-figure3": OneShotSetAgreement,
    "repeated-figure4": RepeatedSetAgreement,
    "anonymous-figure5": AnonymousRepeatedSetAgreement,
    "anonymous-oneshot": AnonymousOneShotSetAgreement,
}

REGIMES = [(4, 1, 1), (5, 2, 2), (6, 2, 3), (7, 3, 3), (9, 1, 4)]


# --------------------------------------------------------------------- #
# The headline claim: all four families match Figure 1 symbolically
# --------------------------------------------------------------------- #

def test_all_four_families_match_figure1_symbolically():
    footprints = family_footprints(str(REPO))
    assert set(footprints) == set(EXPECTED)
    for family, expected in EXPECTED.items():
        derived = dict(footprints[family].footprint)
        assert derived == dict(expected), (
            f"{family}: derived {p_render(derived)}, "
            f"expected {p_render(expected)}"
        )


def test_shipped_tree_footprint_pass_is_clean():
    report = check_footprints(str(REPO))
    assert report.findings == [], report.render()


@pytest.mark.parametrize("family", sorted(EXPECTED))
@pytest.mark.parametrize("n,m,k", REGIMES)
def test_symbolic_footprint_matches_operational_count(family, n, m, k):
    if k >= n or m > k:
        pytest.skip("outside the paper's regime")
    protocol = PROTOCOLS[family](n=n, m=m, k=k)
    operational = protocol.default_layout().register_count()
    symbolic = p_eval(EXPECTED[family], n=n, m=m, k=k)
    assert operational == symbolic


def test_declared_objects_are_derived_from_source():
    footprints = family_footprints(str(REPO))
    assert footprints["oneshot-figure3"].objects == ("A",)
    assert footprints["anonymous-figure5"].objects == ("A", "H")


# --------------------------------------------------------------------- #
# The regime decision procedure
# --------------------------------------------------------------------- #

def test_regime_nonnegativity_accepts_figure1_slacks():
    lower = poly(n=1, m=1, k=-1)  # n + m - k (Theorem 2)
    upper = poly(n=1, m=2, k=-1)  # n + 2m - k
    assert nonnegative_on_regime(p_sub(upper, lower))  # m >= 0
    anon = EXPECTED["anonymous-figure5"]
    assert nonnegative_on_regime(p_sub(anon, lower))


def test_regime_nonnegativity_rejects_genuine_negatives():
    assert not nonnegative_on_regime(poly(k=1, n=-1))  # k - n < 0
    assert not nonnegative_on_regime(poly(const=-1))
    # m - k <= 0 with equality possible, strictly negative when m < k
    assert not nonnegative_on_regime(poly(m=1, k=-1, const=-1))


def test_regime_nonnegativity_boundary_cases():
    assert nonnegative_on_regime(poly(m=1, const=-1))  # m >= 1
    assert nonnegative_on_regime(poly(k=1, m=-1))      # k >= m
    assert nonnegative_on_regime(poly(n=1, k=-1, const=-1))  # n >= k+1
    assert nonnegative_on_regime({})  # the zero polynomial


# --------------------------------------------------------------------- #
# Seeded fixture families trip their FP rules
# --------------------------------------------------------------------- #

def fixture_spec(class_name, **overrides):
    """A FamilySpec pointed at the broken shells in the fixture module."""
    base = dict(
        family=f"fixture-{class_name}",
        module="fixtures/analysis/fp_families.py",
        class_name=class_name,
        expected=poly(n=1, m=2, k=-1),
        expected_text="n + 2m - k",
        upper_bounds=(poly(n=1, m=2, k=-1), poly(n=1)),
        upper_text="min(n+2m-k, n)",
        lower_bound=poly(n=1, m=1, k=-1),
        source="Figure 1 (fixture)",
    )
    base.update(overrides)
    return FamilySpec(**base)


def test_extra_register_regression_trips_fp001():
    spec = fixture_spec("RegressedSetAgreement")
    footprint, findings = check_family(spec, pathlib.Path(FIXDIR))
    rules = [f.rule for f in findings]
    assert "FP001" in rules
    assert any("regression" in f.message for f in findings)
    # The derived footprint itself is still reported for inspection.
    assert footprint is not None
    assert dict(footprint.footprint) == dict(
        poly(n=1, m=2, k=-1, const=1)
    )


def test_undeclared_access_trips_fp002():
    spec = fixture_spec("UndeclaredAccessSetAgreement")
    footprint, findings = check_family(spec, pathlib.Path(FIXDIR))
    assert [f.rule for f in findings] == ["FP002"]
    assert "'Z'" in findings[0].message
    assert findings[0].line > 0


def test_opaque_allocation_trips_fp003():
    spec = fixture_spec(
        "OpaqueAllocationSetAgreement",
        expected=poly(n=1, const=1),
        upper_bounds=(poly(n=1, const=1),),
        lower_bound=None,
    )
    footprint, findings = check_family(spec, pathlib.Path(FIXDIR))
    assert footprint is None  # refused to account, not silently wrong
    assert [f.rule for f in findings] == ["FP003"]
    assert "mystery_layout" in findings[0].message


def test_missing_class_trips_fp003():
    spec = fixture_spec("NoSuchAlgorithm")
    footprint, findings = check_family(spec, pathlib.Path(FIXDIR))
    assert footprint is None
    assert [f.rule for f in findings] == ["FP003"]


def test_footprint_below_lower_bound_is_reported_as_unsound():
    # An "algorithm" claiming 2 registers would beat Theorem 2: the
    # checker must call out the accounting, not celebrate the algorithm.
    spec = fixture_spec(
        "UndeclaredAccessSetAgreement",
        lower_bound=p_add(poly(n=1, m=2, k=-1), poly(const=1)),
    )
    _, findings = check_family(spec, pathlib.Path(FIXDIR))
    assert any(
        f.rule == "FP001" and "unsound" in f.message for f in findings
    )


# --------------------------------------------------------------------- #
# Registry sanity
# --------------------------------------------------------------------- #

def test_default_registry_covers_all_four_families():
    names = {spec.family for spec in DEFAULT_FAMILIES}
    assert names == set(EXPECTED)
    for spec in DEFAULT_FAMILIES:
        assert dict(spec.expected) == dict(EXPECTED[spec.family])
