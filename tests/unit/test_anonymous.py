"""Unit tests for the Figure 5 anonymous algorithms (repeated + one-shot)."""

import pytest

from repro import AnonymousRepeatedSetAgreement, System, RandomScheduler, run, run_solo
from repro._types import BOT
from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousPersistent,
    LoopThreadState,
    PollThreadState,
    most_frequent_value,
    value_counts,
    DECIDED,
    SCAN,
    UPDATE,
    WRITE_H,
)
from repro.errors import AnonymityViolation
from repro.runtime.automaton import Context, Decide
from repro.sched import EventuallyBoundedScheduler
from repro.spec import assert_execution_safe


def make(n=3, m=1, k=2):
    return AnonymousRepeatedSetAgreement(n=n, m=m, k=k)


def ctx_for(protocol, pid=0):
    return Context(pid=pid, n=protocol.n, params=protocol.params,
                   anonymous=True)


def entry(value, t, history=()):
    return (value, t, tuple(history))


class TestParameters:
    def test_nominal_components(self):
        assert make(3, 1, 2).components == 3   # (m+1)(n-k)+m² = 2·1+1
        assert make(6, 2, 4).components == 10  # 3·2+4

    def test_register_count_includes_h(self):
        system = System(make(3, 1, 2), workloads=[["a"], ["b"], ["c"]])
        assert system.layout.register_count() == 4  # 3 components + H

    def test_ell(self):
        assert make(3, 1, 2).ell == 2  # n+m-k
        assert make(6, 2, 4).ell == 4

    def test_identifier_access_raises(self):
        ctx = ctx_for(make())
        with pytest.raises(AnonymityViolation):
            _ = ctx.identifier


class TestValueCounts:
    def test_counts_only_matching_instance(self):
        scan = (entry("a", 1), entry("a", 1), entry("b", 2), BOT)
        counts, order = value_counts(scan, 1)
        assert counts == {"a": 2}
        assert order == ["a"]

    def test_most_frequent(self):
        scan = (entry("a", 1), entry("b", 1), entry("b", 1))
        assert most_frequent_value(scan, 1) == "b"

    def test_tie_breaks_by_scan_order(self):
        scan = (entry("z", 1), entry("q", 1))
        assert most_frequent_value(scan, 1) == "z"


class TestThread1:
    def test_begin_writes_h_first(self):
        protocol = make()
        loop, poll = protocol.begin(
            ctx_for(protocol), AnonymousPersistent(), "v", 1
        )
        assert loop.phase == WRITE_H
        assert isinstance(poll, PollThreadState)

    def test_shortcut_after_h_write(self):
        protocol = make()
        state = LoopThreadState(pref=None, i=0, t=1, history=("x",),
                                phase=WRITE_H)
        new = protocol._loop_apply(state, None)
        assert new.phase == DECIDED and new.decision == "x"

    def test_update_scan_alternation(self):
        protocol = make()
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=WRITE_H)
        state = protocol._loop_apply(state, None)
        assert state.phase == UPDATE
        state = protocol._loop_apply(state, None)
        assert state.phase == SCAN

    def test_higher_instance_adoption(self):
        protocol = make()
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=SCAN)
        scan = (entry("w", 3, ("x", "y")), BOT, BOT)
        new = protocol._loop_after_scan(state, scan)
        assert new.phase == DECIDED and new.decision == "x"

    def test_decide_most_frequent(self):
        protocol = make(3, 1, 2)  # r=3, m=1
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1),) * 3
        new = protocol._loop_after_scan(state, scan)
        assert new.phase == DECIDED and new.decision == "w"
        assert new.history == ("w",)

    def test_no_decide_with_bot(self):
        protocol = make(3, 1, 2)
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1), entry("w", 1), BOT)
        new = protocol._loop_after_scan(state, scan)
        assert new.phase == UPDATE

    def test_location_advances_unconditionally(self):
        """Figure 5 line 29: i increments every iteration (unlike Fig 3/4)."""
        protocol = make(3, 1, 2)
        state = LoopThreadState(pref="v", i=1, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1), entry("w", 1), BOT)
        new = protocol._loop_after_scan(state, scan)
        assert new.i == 2

    def test_adoption_threshold_ell(self):
        protocol = make(4, 1, 2)  # r = (2)(2)+1 = 5, ell = 3
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=SCAN)
        # "w" backed by ell=3 components, own "v" by 1 -> adopt w.
        scan = (entry("w", 1), entry("w", 1), entry("w", 1), entry("v", 1), BOT)
        new = protocol._loop_after_scan(state, scan)
        assert new.pref == "w"

    def test_no_adoption_below_threshold(self):
        protocol = make(4, 1, 2)  # ell = 3
        state = LoopThreadState(pref="v", i=0, t=1, history=(), phase=SCAN)
        scan = (entry("w", 1), entry("w", 1), entry("v", 1), BOT, BOT)
        new = protocol._loop_after_scan(state, scan)
        assert new.pref == "v"


class TestThread2:
    def test_poll_waits_until_long_enough(self):
        protocol = make()
        state = PollThreadState(t=2, history=("a",))
        new = protocol._poll_apply(state, ("x",))
        assert new.phase != DECIDED

    def test_poll_decides_from_h(self):
        protocol = make()
        state = PollThreadState(t=2, history=("a",))
        new = protocol._poll_apply(state, ("x", "y", "z"))
        assert new.phase == DECIDED and new.decision == "y"
        assert new.history == ("a", "y")


class TestFinalizePersistent:
    def test_thread2_decision_recovers_thread1_location(self):
        protocol = make()
        loop_state = LoopThreadState(pref="v", i=7, t=1, history=(),
                                     phase=UPDATE)
        decide = Decide(output="x",
                        persistent=AnonymousPersistent(i=0, t=1, history=("x",)))
        merged = protocol.finalize_persistent(
            ctx_for(protocol), decide, (loop_state, None)
        )
        assert merged.i == 7 and merged.history == ("x",)


class TestOneShotVariant:
    def test_components_match_paper_remark(self):
        protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=2)
        system = System(protocol, workloads=[[f"v{i}"] for i in range(4)])
        # one register fewer than the repeated variant (no H)
        assert system.layout.register_count() == (2) * (4 - 2) + 1

    def test_solo_sweeps_components_in_order_and_decides_own(self):
        protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=1, components=3)
        system = System(protocol, workloads=[["a"], ["b"], ["c"], ["d"]])
        execution = run_solo(system, 1)
        assert execution.config.procs[1].outputs == ("b",)
        from repro.lowerbounds.cloning import register_sequence

        coords = register_sequence(execution)
        assert [c.index for c in coords] == [0, 1, 2]

    def test_safe_under_adversary(self):
        for seed in (1, 2):
            protocol = AnonymousOneShotSetAgreement(n=4, m=2, k=3)
            system = System(protocol, workloads=[[f"v{i}"] for i in range(4)])
            scheduler = EventuallyBoundedScheduler(
                survivors=[0, 1], prelude_steps=60,
                prelude=RandomScheduler(seed=seed),
            )
            execution = run(system, scheduler, max_steps=200_000)
            assert_execution_safe(execution, k=3)


class TestEndToEnd:
    def test_repeated_instances_under_adversary(self):
        system = System(
            make(4, 2, 3),
            workloads=[[f"p{i}c{t}" for t in range(2)] for i in range(4)],
        )
        scheduler = EventuallyBoundedScheduler(
            survivors=[1, 2], prelude_steps=100, prelude=RandomScheduler(seed=5)
        )
        execution = run(system, scheduler, max_steps=300_000)
        assert_execution_safe(execution, k=3)
        assert system.decided_all(execution.config, [1, 2])
