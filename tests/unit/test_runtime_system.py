"""Unit tests for the runtime core: invocation, steps, purity, peek."""

import pytest

from repro import (
    OneShotSetAgreement,
    System,
    TrivialSetAgreement,
)
from repro.errors import NotEnabledError, ProtocolViolation
from repro.memory.ops import ScanOp, UpdateOp
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent


def make_trivial(n=3, k=3, per_proc=2):
    protocol = TrivialSetAgreement(n=n, k=k)
    workloads = [[f"v{p}.{j}" for j in range(per_proc)] for p in range(n)]
    return System(protocol, workloads=workloads)


def make_oneshot(n=3, m=1, k=2):
    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    return System(protocol, workloads=[[f"v{p}"] for p in range(n)])


class TestLifecycle:
    def test_invoke_then_decide_for_trivial(self):
        system = make_trivial(per_proc=1)
        config = system.initial_configuration()
        result = system.step(config, 0)
        assert isinstance(result.event, InvokeEvent)
        assert result.event.value == "v0.0"
        result = system.step(result.config, 0)
        assert isinstance(result.event, DecideEvent)
        assert result.event.output == "v0.0"

    def test_workload_exhaustion_disables(self):
        system = make_trivial(n=2, k=2, per_proc=1)
        config = system.initial_configuration()
        for _ in range(2):  # invoke + decide
            config = system.step(config, 0).config
        assert not system.enabled(config, 0)
        with pytest.raises(NotEnabledError):
            system.step(config, 0)

    def test_enabled_pids_and_all_halted(self):
        system = make_trivial(n=2, k=2, per_proc=1)
        config = system.initial_configuration()
        assert system.enabled_pids(config) == (0, 1)
        for pid in (0, 1):
            for _ in range(2):
                config = system.step(config, pid).config
        assert system.all_halted(config)

    def test_invalid_pid(self):
        system = make_trivial()
        config = system.initial_configuration()
        with pytest.raises(NotEnabledError):
            system.step(config, 99)

    def test_outputs_accumulate_per_invocation(self):
        system = make_trivial(n=1, k=1, per_proc=3)
        config = system.initial_configuration()
        while system.enabled(config, 0):
            config = system.step(config, 0).config
        assert config.procs[0].outputs == ("v0.0", "v0.1", "v0.2")

    def test_instance_outputs(self):
        system = make_trivial(n=2, k=2, per_proc=2)
        config = system.initial_configuration()
        for pid in (0, 1):
            while system.enabled(config, pid):
                config = system.step(config, pid).config
        assert set(system.instance_outputs(config, 1)) == {"v0.0", "v1.0"}
        assert set(system.instance_outputs(config, 2)) == {"v0.1", "v1.1"}


class TestPurityAndDeterminism:
    def test_step_is_pure(self):
        system = make_oneshot()
        config = system.initial_configuration()
        first = system.step(config, 0)
        second = system.step(config, 0)
        assert first.config == second.config
        assert first.event == second.event
        # original configuration untouched
        assert config == system.initial_configuration()

    def test_configurations_hashable(self):
        system = make_oneshot()
        c0 = system.initial_configuration()
        c1 = system.step(c0, 0).config
        assert len({c0, c1, c0}) == 2

    def test_peek_matches_step_without_commit(self):
        system = make_oneshot()
        config = system.step(system.initial_configuration(), 0).config
        peeked = system.peek(config, 0)
        stepped = system.step(config, 0)
        assert peeked == stepped.event


class TestMemorySteps:
    def test_oneshot_first_memory_step_is_update(self):
        system = make_oneshot()
        config = system.step(system.initial_configuration(), 0).config
        event = system.peek(config, 0)
        assert isinstance(event, MemoryEvent)
        assert isinstance(event.op, UpdateOp)
        assert event.op.component == 0

    def test_update_then_scan_alternation(self):
        system = make_oneshot()
        config = system.step(system.initial_configuration(), 0).config
        kinds = []
        for _ in range(4):
            result = system.step(config, 0)
            config = result.config
            kinds.append(type(result.event.op))
        assert kinds == [UpdateOp, ScanOp, UpdateOp, ScanOp]

    def test_one_memory_access_per_step(self):
        """Each step's event mentions exactly one op (the granularity the
        paper's proofs count)."""
        system = make_oneshot()
        config = system.initial_configuration()
        for _ in range(20):
            if not system.enabled(config, 0):
                break
            result = system.step(config, 0)
            config = result.config
            assert result.event.kind in ("invoke", "memory", "decide")


class TestOneShotGuards:
    def test_second_invocation_rejected(self):
        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        system = System(protocol, workloads=[["a", "again"], ["b"]])
        config = system.initial_configuration()
        # Run p0 to its first decision (solo run decides under OF).
        while config.procs[0].active is None or True:
            config = system.step(config, 0).config
            if config.procs[0].outputs:
                break
        with pytest.raises(ProtocolViolation):
            # Next step would begin a second Propose.
            system.step(config, 0)
