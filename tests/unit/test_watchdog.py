"""Unit: watchdog limits, the SIGTERM routing contract, and RSS probing.

The watchdog is polled cooperation, not preemption: these tests pin what
``poll()`` returns under each limit, that SIGTERM fans out to every armed
watchdog (and raises :class:`Terminated` when none is armed), and that
the process registry survives enter/exit nesting.
"""

import os
import signal
import time

import pytest

from repro.durable.watchdog import (
    Terminated,
    Watchdog,
    active_watchdogs,
    current_rss_mb,
    deliver_sigterm,
    install_sigterm_handler,
    reset_active_watchdogs,
)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_active_watchdogs()
    yield
    reset_active_watchdogs()


class TestLimits:
    def test_no_limits_never_fires(self):
        wd = Watchdog()
        with wd:
            assert wd.poll() is None

    def test_deadline_fires_after_elapsed(self):
        wd = Watchdog(deadline=0.01)
        with wd:
            time.sleep(0.02)
            assert wd.poll() == "deadline"
            assert wd.poll() == "deadline"  # sticky

    def test_generous_deadline_does_not_fire(self):
        wd = Watchdog(deadline=3600.0)
        with wd:
            assert wd.poll() is None

    def test_rss_ceiling_fires(self):
        assert current_rss_mb() > 0  # the probe works on this platform
        wd = Watchdog(max_rss_mb=0.5)  # any live interpreter exceeds this
        with wd:
            assert wd.poll() == "rss"

    def test_request_stop_first_reason_wins(self):
        wd = Watchdog(deadline=0.001)
        wd.request_stop("sigterm")
        time.sleep(0.005)
        assert wd.poll() == "sigterm"

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(deadline=0)
        with pytest.raises(ValueError):
            Watchdog(max_rss_mb=-1)


class TestSigtermRouting:
    def test_registry_tracks_context(self):
        wd = Watchdog()
        assert active_watchdogs() == []
        with wd:
            assert active_watchdogs() == [wd]
        assert active_watchdogs() == []

    def test_deliver_flags_every_active_watchdog(self):
        first, second = Watchdog(), Watchdog()
        with first, second:
            deliver_sigterm()
        assert first.poll() == "sigterm"
        assert second.poll() == "sigterm"

    def test_deliver_without_watchdog_raises_terminated(self):
        with pytest.raises(Terminated):
            deliver_sigterm()

    def test_terminated_is_not_an_exception(self):
        # must pass through `except Exception` clauses untouched
        assert not issubclass(Terminated, Exception)
        assert issubclass(Terminated, BaseException)

    def test_real_signal_reaches_active_watchdog(self):
        previous = install_sigterm_handler()
        try:
            wd = Watchdog()
            with wd:
                os.kill(os.getpid(), signal.SIGTERM)
                # CPython delivers pending signals at the next bytecode
                # boundary; poll() is one.
                deadline = time.monotonic() + 5.0
                while wd.poll() is None and time.monotonic() < deadline:
                    time.sleep(0.001)
                assert wd.poll() == "sigterm"
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_installer_returns_previous_handler(self):
        before = signal.getsignal(signal.SIGTERM)
        previous = install_sigterm_handler()
        try:
            assert previous is before
            assert signal.getsignal(signal.SIGTERM) is not before
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert signal.getsignal(signal.SIGTERM) is before
