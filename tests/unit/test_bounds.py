"""Unit tests for the Figure 1 bound formulas."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.lowerbounds.bounds import (
    anonymous_oneshot_lower_bound,
    anonymous_oneshot_upper_bound,
    anonymous_repeated_upper_bound,
    baseline_register_count,
    bounds_consistent,
    figure1_table,
    lemma9_process_requirement,
    oneshot_nonanonymous_lower_bound,
    oneshot_upper_bound,
    repeated_lower_bound,
    repeated_upper_bound,
)
from tests.conftest import small_parameter_grid


class TestFormulas:
    def test_repeated_lower(self):
        assert repeated_lower_bound(5, 1, 2) == 4
        assert repeated_lower_bound(10, 3, 7) == 6

    def test_repeated_upper_min(self):
        assert repeated_upper_bound(5, 1, 2) == 5  # n+2m-k = 5 = n
        assert repeated_upper_bound(5, 2, 2) == 5  # n+2m-k = 7 > n -> n
        assert repeated_upper_bound(10, 1, 5) == 7

    def test_oneshot_upper_equals_repeated(self):
        for n, m, k in small_parameter_grid():
            assert oneshot_upper_bound(n, m, k) == repeated_upper_bound(n, m, k)

    def test_consensus_corner_is_tight(self):
        """m = k = 1: both repeated bounds equal n — the headline result."""
        for n in range(2, 40):
            assert repeated_lower_bound(n, 1, 1) == n
            assert repeated_upper_bound(n, 1, 1) == n

    def test_anonymous_lower_matches_fhs_special_case(self):
        """m = k = 1 recovers the Ω(√n) of Fich-Herlihy-Shavit [6]."""
        assert anonymous_oneshot_lower_bound(102, 1, 1) == pytest.approx(10.0)

    def test_anonymous_lower_zero_when_n_small(self):
        assert anonymous_oneshot_lower_bound(4, 1, 2) == 0.0

    def test_anonymous_uppers(self):
        assert anonymous_repeated_upper_bound(6, 2, 4) == 3 * 2 + 4 + 1
        assert anonymous_oneshot_upper_bound(6, 2, 4) == 3 * 2 + 4

    def test_oneshot_nonanon_lower_is_two(self):
        assert oneshot_nonanonymous_lower_bound(9, 2, 4) == 2

    def test_baseline_space(self):
        assert baseline_register_count(8, 3) == 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            repeated_lower_bound(3, 2, 1)
        with pytest.raises(ConfigurationError):
            repeated_upper_bound(3, 1, 3)


class TestLemma9Requirement:
    def test_formula(self):
        # c = ceil((k+1)/m); n >= c (m + (r²-r)/2)
        assert lemma9_process_requirement(1, 1, 2) == 2 * (1 + 1)
        assert lemma9_process_requirement(1, 2, 3) == 3 * (1 + 3)
        assert lemma9_process_requirement(2, 3, 2) == 2 * (2 + 1)

    def test_monotone_in_r(self):
        values = [lemma9_process_requirement(1, 1, r) for r in range(1, 8)]
        assert values == sorted(values)


class TestFigure1Table:
    def test_all_eight_cells_present(self, grid):
        for n, m, k in grid:
            table = figure1_table(n, m, k)
            assert len(table) == 8

    def test_sources_cited(self):
        table = figure1_table(5, 1, 2)
        assert table["non-anonymous/repeated/lower"].source == "Theorem 2"
        assert table["anonymous/one-shot/lower"].strict

    def test_consistency_across_grid(self, grid):
        for n, m, k in grid:
            assert bounds_consistent(n, m, k), (n, m, k)

    def test_cell_str(self):
        table = figure1_table(5, 1, 2)
        assert ">" in str(table["anonymous/one-shot/lower"])
        assert "Theorem 8" in str(table["non-anonymous/repeated/upper"])


class TestShapeClaims:
    def test_lower_bound_monotone_in_m(self):
        """More survivors to serve -> more registers."""
        for k in (3, 5):
            values = [repeated_lower_bound(10, m, k) for m in range(1, k + 1)]
            assert values == sorted(values)

    def test_lower_bound_antitone_in_k(self):
        """More allowed outputs -> problem easier -> fewer registers."""
        values = [repeated_lower_bound(10, 1, k) for k in range(1, 10)]
        assert values == sorted(values, reverse=True)

    def test_gap_between_bounds_is_exactly_m_when_small(self):
        for n, m, k in small_parameter_grid():
            if n + 2 * m - k <= n:
                gap = repeated_upper_bound(n, m, k) - repeated_lower_bound(n, m, k)
                assert gap == m
