"""Stable configuration fingerprints: cross-process and cross-seed identity.

The parallel exploration engine keys its visited set by
``stable_fingerprint``, so fingerprints computed in different worker
processes (each with its own ``PYTHONHASHSEED`` salt) must agree exactly.
"""

import os
import pathlib
import subprocess
import sys

import repro
from repro import OneShotSetAgreement, System
from repro._types import BOT, Params
from repro.runtime.system import configuration_fingerprint, stable_fingerprint

SRC_DIR = str(pathlib.Path(repro.__file__).parents[1])

FINGERPRINT_SCRIPT = """
from repro import OneShotSetAgreement, System
from repro.runtime.system import configuration_fingerprint

system = System(OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]])
config = system.initial_configuration()
config = system.step(config, 0).config
config = system.step(config, 1).config
print(configuration_fingerprint(config))
"""


def _fingerprint_in_subprocess(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", FINGERPRINT_SCRIPT],
        capture_output=True, text=True, check=True, env=env,
    )
    return output.stdout.strip()


class TestCrossProcessStability:
    def test_identical_across_hash_seeds(self):
        """Two interpreters with different hash salts agree exactly."""
        assert _fingerprint_in_subprocess("1") == _fingerprint_in_subprocess("2")

    def test_subprocess_matches_in_process(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        config = system.step(
            system.step(system.initial_configuration(), 0).config, 1
        ).config
        assert configuration_fingerprint(config) == _fingerprint_in_subprocess("7")


class TestFingerprintSemantics:
    def test_equal_configurations_equal_fingerprints(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        a = system.step(system.initial_configuration(), 0).config
        b = system.step(system.initial_configuration(), 0).config
        assert a == b
        assert configuration_fingerprint(a) == configuration_fingerprint(b)

    def test_distinct_configurations_distinct_fingerprints(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        initial = system.initial_configuration()
        seen = {configuration_fingerprint(initial)}
        frontier = [initial]
        for _ in range(3):  # three BFS layers, all pairwise-distinct configs
            nxt = []
            for config in frontier:
                for pid in system.enabled_pids(config):
                    succ = system.step(config, pid).config
                    nxt.append(succ)
            distinct = {c for c in nxt}
            fps = {configuration_fingerprint(c) for c in distinct}
            assert len(fps) == len(distinct)
            seen |= fps
            frontier = list(distinct)
        assert len(seen) > 3

    def test_bot_is_not_confused_with_none_or_string(self):
        assert len({
            stable_fingerprint(BOT),
            stable_fingerprint(None),
            stable_fingerprint("⊥"),
            stable_fingerprint(()),
        }) == 4

    def test_value_vocabulary_is_type_tagged(self):
        """Same surface, different types/structure → different fingerprints."""
        pairs = [
            (1, "1"),
            (True, 1),
            ((1, 2), (1, (2,))),
            (("ab",), ("a", "b")),
            ({"a": 1}, (("a", 1),)),
            (frozenset({1, 2}), (1, 2)),
        ]
        for left, right in pairs:
            assert stable_fingerprint(left) != stable_fingerprint(right), (
                left, right
            )

    def test_params_and_dicts_are_order_insensitive(self):
        assert stable_fingerprint(Params(n=4, k=2, m=1)) == \
            stable_fingerprint(Params(m=1, n=4, k=2))
        assert stable_fingerprint({"x": 1, "y": 2}) == \
            stable_fingerprint({"y": 2, "x": 1})
