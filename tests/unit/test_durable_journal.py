"""Unit: journal framing, checkpoint sealing, and recovery accounting.

The durable layer's contract is asymmetric: writes may fail loudly, but
*reads never raise and never return unverified bytes*.  These tests pin
the record framing, the scan classification (valid prefix / torn tail /
corrupt record / bad header), checkpoint compaction, the stale-record
skip, and the quarantine protocol.
"""

import os
import pickle

import pytest

from repro.durable.checkpoint import (
    CheckpointStore,
    read_sealed,
    seal,
    unseal,
    write_sealed,
)
from repro.durable.journal import (
    JOURNAL_MAGIC,
    MAX_RECORD_BYTES,
    Journal,
    RunJournal,
    scan_journal,
)
from repro.durable.recovery import RecoveryReport, quarantine_file


class TestSealedBlobs:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_sealed(path, b"payload bytes")
        assert read_sealed(path) == b"payload bytes"

    def test_unseal_rejects_bad_magic_and_bad_digest(self):
        blob = seal(b"data")
        assert unseal(blob) == b"data"
        assert unseal(b"NOTMAGIC" + blob) is None
        flipped = bytearray(blob)
        flipped[-1] ^= 0x01
        assert unseal(bytes(flipped)) is None
        assert unseal(b"") is None

    def test_read_sealed_missing_file(self, tmp_path):
        assert read_sealed(tmp_path / "absent.bin") is None

    def test_replace_is_atomic_under_failure(self, tmp_path):
        path = tmp_path / "blob.bin"
        write_sealed(path, b"old")
        write_sealed(path, b"new")
        assert read_sealed(path) == b"new"
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]


class TestJournalScan:
    def test_missing_and_empty_scan_clean(self, tmp_path):
        scan = scan_journal(tmp_path / "absent.bin")
        assert scan.header_ok and scan.payloads == []
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        scan = scan_journal(empty)
        assert scan.header_ok and scan.payloads == []

    def test_roundtrip_records(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")
        journal.append(b"one")
        journal.append(b"two", sync=True)
        journal.close()
        scan = scan_journal(journal.path)
        assert scan.payloads == [b"one", b"two"]
        assert scan.discarded_bytes == 0

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")
        journal.append(b"alpha")
        journal.close()
        keep = journal.path.stat().st_size
        journal = Journal(tmp_path / "j.bin")
        journal.append(b"beta")
        journal.close()
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: keep + 7])  # cut mid-record
        scan = scan_journal(journal.path)
        assert scan.payloads == [b"alpha"]
        assert scan.valid_bytes == keep
        assert scan.discarded_bytes == 7
        journal.repair(scan)
        assert journal.path.stat().st_size == keep

    def test_bit_flip_stops_the_scan(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")
        journal.append(b"alpha")
        journal.append(b"beta")
        journal.close()
        data = bytearray(journal.path.read_bytes())
        data[-1] ^= 0x01  # corrupt the last record's payload
        journal.path.write_bytes(bytes(data))
        scan = scan_journal(journal.path)
        assert scan.payloads == [b"alpha"]
        assert scan.discarded_bytes > 0

    def test_bad_header_unreadable_wholesale(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"garbage header" + b"x" * 50)
        scan = scan_journal(path)
        assert not scan.header_ok
        assert scan.payloads == [] and scan.valid_bytes == 0

    def test_corrupt_length_prefix_never_allocates(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(
            JOURNAL_MAGIC + (2**63).to_bytes(8, "big") + b"\0" * 40
        )
        scan = scan_journal(path)  # must return promptly, not allocate 8 EiB
        assert scan.payloads == []

    def test_oversize_append_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")

        class Huge(bytes):
            def __len__(self):
                return MAX_RECORD_BYTES + 1

        with pytest.raises(ValueError):
            journal.append(Huge())

    def test_reset_leaves_header_only(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")
        journal.append(b"data")
        journal.reset()
        assert journal.path.read_bytes() == JOURNAL_MAGIC
        journal.append(b"after")
        journal.close()
        assert scan_journal(journal.path).payloads == [b"after"]


class TestRunJournal:
    def test_fresh_recover_is_empty(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        ck, records, report = runlog.recover()
        assert ck is None and records == []
        assert not report.salvaged_anything
        assert "fresh run" in report.describe()

    def test_records_then_checkpoint_then_records(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.record(0, "a")
        runlog.record(1, "b")
        runlog.checkpoint({"state": "ab"}, next_index=2)
        runlog.record(2, "c")
        runlog.close()
        runlog = RunJournal(tmp_path / "run")
        ck, records, report = runlog.recover()
        assert ck == {"state": "ab"}
        assert records == [(2, "c")]
        assert report.checkpoint_loaded and report.records_recovered == 1
        assert runlog.next_index == 3

    def test_stale_records_skipped(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.checkpoint("agg", next_index=5)
        runlog.record(3, "stale")  # pre-compaction leftover
        runlog.record(5, "live")
        runlog.close()
        runlog = RunJournal(tmp_path / "run")
        ck, records, report = runlog.recover()
        assert ck == "agg" and records == [(5, "live")]
        assert report.records_stale == 1

    def test_gap_drops_suffix(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.record(0, "a")
        runlog.record(2, "after-gap")
        runlog.close()
        runlog = RunJournal(tmp_path / "run")
        _, records, report = runlog.recover()
        assert records == [(0, "a")]
        assert any("gap" in note for note in report.notes)

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.checkpoint("agg", next_index=4)
        runlog.close()
        ck_path = tmp_path / "run" / "checkpoint.bin"
        blob = bytearray(ck_path.read_bytes())
        blob[-1] ^= 0x01
        ck_path.write_bytes(bytes(blob))
        runlog = RunJournal(tmp_path / "run")
        ck, records, report = runlog.recover()
        assert ck is None and records == []
        assert "checkpoint.bin" in report.quarantined
        assert not ck_path.exists()  # moved, not deleted
        assert list((tmp_path / "run" / "quarantine").iterdir())

    def test_bad_journal_header_quarantined(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.record(0, "x")
        runlog.close()
        runlog.journal.path.write_bytes(b"not a journal at all")
        runlog = RunJournal(tmp_path / "run")
        ck, records, report = runlog.recover()
        assert records == []
        assert "journal.bin" in report.quarantined

    def test_torn_tail_reported_and_repaired(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.record(0, "keep")
        runlog.record(1, "torn")
        runlog.close()
        path = runlog.journal.path
        path.write_bytes(path.read_bytes()[:-3])
        runlog = RunJournal(tmp_path / "run")
        _, records, report = runlog.recover()
        assert records == [(0, "keep")]
        assert report.bytes_discarded > 0
        assert "torn" in report.describe()
        # the file itself was truncated back to its valid prefix
        assert scan_journal(path).discarded_bytes == 0


class TestCheckpointStore:
    def test_missing(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.bin")
        assert store.load() == (None, "missing")

    def test_roundtrip_and_unpicklable_quarantine(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.bin")
        store.save({"x": 1})
        assert store.load() == ({"x": 1}, None)
        # a sealed blob whose payload is not a pickle: digest passes,
        # unpickling fails, file is quarantined
        write_sealed(store.path, b"this is not a pickle")
        obj, problem = store.load()
        assert obj is None and problem == "corrupt"
        assert not store.path.exists()


class TestQuarantine:
    def test_collision_suffixes(self, tmp_path):
        qdir = tmp_path / "quarantine"
        for expect in ("bad.bin", "bad.bin.1", "bad.bin.2"):
            victim = tmp_path / "bad.bin"
            victim.write_bytes(b"x")
            moved = quarantine_file(victim, qdir)
            assert moved is not None and moved.name == expect

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "ghost", tmp_path / "q") is None


class TestRecoveryReport:
    def test_describe_mentions_everything(self):
        report = RecoveryReport(
            run="r", checkpoint_loaded=True, records_recovered=3,
            records_stale=2, bytes_discarded=17, quarantined=["f"],
        )
        line = report.describe()
        for fragment in ("checkpoint", "3 journal records", "2 stale",
                         "17 torn bytes", "1 files quarantined"):
            assert fragment in line

    def test_pickles_cleanly(self):
        report = RecoveryReport(run="r", records_recovered=1)
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
