"""Unit tests for the Theorem 2 covering construction."""

import pytest

from repro import RepeatedSetAgreement, System
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds.covering import (
    CoveringFailure,
    covering_construction,
)
from repro.runtime.runner import replay
from repro.spec.properties import check_k_agreement


def attacked_system(n, m, k, r, instances=12):
    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=r)
    return System(protocol, workloads=distinct_inputs(n, instances=instances))


class TestConstruction:
    def test_smallest_case_produces_violation(self):
        system = attacked_system(3, 1, 1, 2)
        result = covering_construction(system, m=1, k=1)
        assert result.success
        assert len(result.distinct_outputs) == 2
        assert result.violations  # check_k_agreement found it too

    def test_group_structure(self):
        system = attacked_system(3, 1, 1, 2)
        result = covering_construction(system, m=1, k=1)
        # c = ceil((k+1)/m) = 2 groups, sizes k+1-(c-1)m = 1 and m = 1.
        assert len(result.groups) == 2
        assert len(result.groups[0].final_q) == 1
        assert len(result.groups[1].final_q) == 1
        # Group Q sets are disjoint.
        q_sets = [set(g.final_q) for g in result.groups]
        assert not (q_sets[0] & q_sets[1])

    def test_covered_registers_within_provision(self):
        system = attacked_system(4, 1, 2, 2)
        result = covering_construction(system, m=1, k=2)
        for group in result.groups[:-1]:
            assert len(group.covered) <= 2
            assert len(group.p_set) == len(group.covered)

    def test_schedule_is_self_certifying(self):
        system = attacked_system(4, 1, 2, 2)
        result = covering_construction(system, m=1, k=2)
        fresh = replay(system, result.schedule)
        outputs = set(fresh.instance_outputs(result.target_instance))
        assert len(outputs) >= 3
        assert check_k_agreement(fresh, 2)

    def test_multi_member_groups(self):
        """m = 2: the final group has two processes and the Lemma 1 search
        must find them two distinct outputs."""
        system = attacked_system(4, 2, 2, 3, instances=14)
        result = covering_construction(system, m=2, k=2)
        assert result.success
        assert len(result.groups[-1].final_q) == 2

    def test_narrative_records_stages(self):
        system = attacked_system(3, 1, 1, 2)
        result = covering_construction(system, m=1, k=1)
        text = "\n".join(result.narrative)
        assert "froze" in text
        assert "closure" in text
        assert "violation certified" in text


class TestFailureModes:
    def test_workloads_too_short(self):
        system = attacked_system(3, 1, 1, 2, instances=1)
        with pytest.raises(CoveringFailure, match="workload"):
            covering_construction(system, m=1, k=1)

    def test_cannot_certify_against_safe_algorithm(self):
        """At the nominal register count the construction must not produce
        a certified violation (it either fails or certifies nothing)."""
        protocol = RepeatedSetAgreement(n=3, m=1, k=1)  # nominal r = 4
        system = System(protocol, workloads=distinct_inputs(3, instances=10))
        try:
            result = covering_construction(system, m=1, k=1)
        except CoveringFailure:
            return
        assert not result.success
