"""Unit tests for worker supervision: execution, healing, degradation."""

import multiprocessing

import pytest

from repro.durable.retry import BackoffPolicy
from repro.serve.protocol import VerifyJob, verdict_fingerprint
from repro.serve.supervisor import WorkerSupervisor, execute_job

# Small, fast jobs — verdicts are deterministic regardless of budget.
EXPLORE = VerifyJob(mode="explore", max_configs=2000)
RUN = VerifyJob(mode="run", max_steps=500)
FAULTS = VerifyJob(mode="faults", fault_family="crashes", trials=2,
                   budget=2000)

FAST_POLICY = BackoffPolicy(max_retries=1, base_delay=0.0, max_delay=0.0)


class TestExecuteJob:
    @pytest.mark.parametrize("job", [EXPLORE, RUN, FAULTS],
                             ids=["explore", "run", "faults"])
    def test_verdict_is_deterministic(self, job):
        first = execute_job(job.descriptor())
        second = execute_job(job.descriptor())
        assert first["outcome"] in ("ok", "refuted")
        assert verdict_fingerprint(first) == verdict_fingerprint(second)

    def test_payload_echoes_the_job(self):
        payload = execute_job(RUN.descriptor())
        assert payload["job"] == RUN.descriptor()

    def test_invalid_descriptor_is_an_error_not_a_raise(self):
        payload = execute_job({"n": 0})
        assert payload["outcome"] == "error"
        assert "n" in payload["detail"]

    def test_unknown_field_is_an_error(self):
        payload = execute_job({"max_confgs": 10})
        assert payload["outcome"] == "error"
        assert "unknown job field" in payload["detail"]

    def test_deadline_zero_budget_reports_incomplete(self):
        # A deadline this tight fires at the first poll boundary.
        payload = execute_job(EXPLORE.descriptor(), deadline=1e-9)
        assert payload["outcome"] == "incomplete"
        assert payload["reason"] == "deadline"


class TestSerialSupervisor:
    def test_serial_matches_inline_execution(self):
        supervisor = WorkerSupervisor(serial=True)
        supervisor.start()
        try:
            payload = supervisor.run_job(RUN)
            assert verdict_fingerprint(payload) == verdict_fingerprint(
                execute_job(RUN.descriptor())
            )
            assert supervisor.status()["degraded"] is True
            assert supervisor.status()["workers"] == 0
        finally:
            supervisor.stop()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(workers=0)


class _FailingPool:
    """A pool whose every apply_async submission explodes."""

    def __init__(self):
        self.calls = 0

    def apply_async(self, *args, **kwargs):
        self.calls += 1
        raise RuntimeError("worker lost")

    def terminate(self):
        pass

    def join(self):
        pass


class _WedgedPool:
    """A pool whose results never arrive: get() always times out."""

    def apply_async(self, *args, **kwargs):
        class _Handle:
            def get(self, timeout=None):
                raise multiprocessing.TimeoutError()

        return _Handle()

    def terminate(self):
        pass

    def join(self):
        pass


class TestHealing:
    def test_pool_failures_heal_then_degrade_to_serial(self, monkeypatch):
        supervisor = WorkerSupervisor(policy=FAST_POLICY)
        pools = []

        def build():
            pools.append(_FailingPool())
            return pools[-1]

        monkeypatch.setattr(supervisor, "_build_pool", build)
        supervisor.start()
        payload = supervisor.run_job(RUN)
        # Every attempt built a fresh pool, failed, healed; then the
        # supervisor degraded and answered in-process anyway.
        assert supervisor.degraded is True
        assert supervisor.rebuilds == FAST_POLICY.max_retries + 1
        assert len(pools) == FAST_POLICY.max_retries + 1
        assert payload["outcome"] in ("ok", "refuted")
        assert verdict_fingerprint(payload) == verdict_fingerprint(
            execute_job(RUN.descriptor())
        )

    def test_degraded_supervisor_skips_the_pool(self, monkeypatch):
        supervisor = WorkerSupervisor(policy=FAST_POLICY)
        monkeypatch.setattr(supervisor, "_build_pool", _FailingPool)
        supervisor.run_job(RUN)
        assert supervisor.degraded is True
        rebuilds = supervisor.rebuilds
        supervisor.run_job(RUN)  # second job: straight to in-process
        assert supervisor.rebuilds == rebuilds

    def test_unbuildable_pool_degrades_without_burning_retries(self, monkeypatch):
        supervisor = WorkerSupervisor(policy=FAST_POLICY)
        monkeypatch.setattr(supervisor, "_build_pool", lambda: None)
        payload = supervisor.run_job(RUN)
        assert supervisor.degraded is True
        assert supervisor.rebuilds == 0
        assert payload["outcome"] in ("ok", "refuted")

    def test_wedged_worker_is_incomplete_not_retried(self, monkeypatch):
        """A backstop timeout means the job blew past deadline + grace;
        retrying a deterministically over-budget job would waste the
        whole ladder, so the supervisor reports incomplete once."""
        supervisor = WorkerSupervisor(job_deadline=0.01, policy=FAST_POLICY)
        monkeypatch.setattr(supervisor, "_build_pool", _WedgedPool)
        payload = supervisor.run_job(RUN)
        assert payload == {
            "outcome": "incomplete", "reason": "deadline",
            "job": RUN.descriptor(),
        }
        assert supervisor.degraded is False
        assert supervisor.rebuilds == 1


class TestRealPool:
    def test_pooled_verdict_matches_serial(self):
        """One real fork worker produces the same fingerprint as inline
        execution — worker identity leaves no trace in the payload."""
        supervisor = WorkerSupervisor(workers=1, policy=FAST_POLICY)
        supervisor.start()
        try:
            payload = supervisor.run_job(EXPLORE)
        finally:
            supervisor.stop()
        assert supervisor.degraded is False
        assert verdict_fingerprint(payload) == verdict_fingerprint(
            execute_job(EXPLORE.descriptor())
        )
