"""Unit tests for baseline/trivial/consensus/commit-adopt protocols."""

import pytest

from repro import (
    BaselineOneShotSetAgreement,
    RoundRobinScheduler,
    System,
    TrivialSetAgreement,
    run,
    run_solo,
)
from repro.agreement.commit_adopt import CommitAdoptConsensus
from repro.agreement.consensus import (
    anonymous_repeated_consensus,
    obstruction_free_consensus,
    repeated_consensus,
)
from repro.bench.sweep import bounded_adversary_run
from repro.bench.workloads import distinct_inputs
from repro.errors import ConfigurationError
from repro.spec import assert_execution_safe


class TestTrivial:
    def test_requires_k_ge_n(self):
        with pytest.raises(ConfigurationError):
            TrivialSetAgreement(n=3, k=2)

    def test_outputs_own_inputs(self):
        system = System(TrivialSetAgreement(n=3, k=3),
                        workloads=[["a"], ["b"], ["c"]])
        execution = run(system, RoundRobinScheduler())
        assert [p.outputs[0] for p in execution.config.procs] == ["a", "b", "c"]

    def test_zero_registers(self):
        system = System(TrivialSetAgreement(n=3, k=3),
                        workloads=[["a"], ["b"], ["c"]])
        assert system.layout.register_count() == 0

    def test_wait_free(self):
        """Every process decides in exactly 2 steps regardless of others."""
        system = System(TrivialSetAgreement(n=3, k=3),
                        workloads=[["a"], ["b"], ["c"]])
        execution = run_solo(system, 1)
        assert execution.steps == 2


class TestBaseline:
    def test_space_is_2_n_minus_k(self):
        protocol = BaselineOneShotSetAgreement(n=7, k=3)
        assert protocol.components == 8

    def test_k_equal_n_minus_1_refused(self):
        with pytest.raises(ConfigurationError, match="k <= n-2"):
            BaselineOneShotSetAgreement(n=4, k=3)

    def test_m_is_one(self):
        assert BaselineOneShotSetAgreement(n=5, k=2).m == 1

    def test_safe_and_live(self):
        system = System(BaselineOneShotSetAgreement(n=5, k=2),
                        workloads=distinct_inputs(5))
        execution = bounded_adversary_run(system, survivors=[4], seed=3)
        assert_execution_safe(execution, k=2)
        assert execution.config.procs[4].outputs


class TestConsensusFactories:
    def test_oneshot_consensus_params(self):
        protocol = obstruction_free_consensus(5)
        assert (protocol.m, protocol.k) == (1, 1)
        assert protocol.components == 6  # n + 1

    def test_repeated_consensus_params(self):
        protocol = repeated_consensus(4)
        assert protocol.components == 5

    def test_anonymous_consensus_registers(self):
        protocol = anonymous_repeated_consensus(4)
        system = System(protocol, workloads=distinct_inputs(4))
        assert system.layout.register_count() == 2 * 4  # 2(n-1)+1 +1 = 2n

    def test_components_override(self):
        assert obstruction_free_consensus(5, components=3).components == 3


class TestCommitAdopt:
    def test_register_count_is_2n(self):
        system = System(CommitAdoptConsensus(4), workloads=distinct_inputs(4))
        assert system.layout.register_count() == 8

    def test_solo_decides_input_in_one_round(self):
        system = System(CommitAdoptConsensus(3), workloads=distinct_inputs(3))
        execution = run_solo(system, 1)
        assert execution.config.procs[1].outputs == ("v1.0",)
        # one round: write A, collect 2n, write B, collect 2n, decide
        assert execution.steps == 1 + 1 + 6 + 1 + 6 + 1

    def test_too_few_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitAdoptConsensus(1)

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_under_contention(self, seed):
        system = System(CommitAdoptConsensus(3), workloads=distinct_inputs(3))
        execution = bounded_adversary_run(system, survivors=[seed % 3],
                                          seed=seed)
        assert_execution_safe(execution, k=1)

    def test_catch_up_adopts_frontier_value(self):
        """A process that sleeps through another's decision adopts it."""
        system = System(CommitAdoptConsensus(2), workloads=distinct_inputs(2))
        lead = run_solo(system, 0)
        follow = run_solo(system, 1, initial=lead.config)
        assert follow.config.procs[1].outputs == lead.config.procs[0].outputs
