"""Unit tests for frame execution and substrate layout builders."""

import pytest

from repro import OneShotSetAgreement, AnonymousRepeatedSetAgreement, System, run, SoloScheduler
from repro._types import Params
from repro.errors import ConfigurationError, ProtocolViolation
from repro.memory.layout import ImplementedBinding, MemoryLayout, PrimitiveBinding
from repro.memory.ops import ReadOp, ScanOp, UpdateOp, WriteOp
from repro.objects import DoubleCollectSnapshot, implemented_snapshot_layout
from repro.objects.layouts import substrate_register_count
from repro.runtime.frames import ImplContext, ObjectImplementation, Return
from repro.memory.layout import BankSpec


class TestImplementedLayoutBuilder:
    def test_atomic_passthrough(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=2)
        layout = implemented_snapshot_layout(protocol, "atomic")
        assert layout.register_count() == protocol.components

    @pytest.mark.parametrize("kind,expected", [
        ("double-collect", 6),  # r registers
        ("wait-free", 6),
        ("swmr", 4),            # n registers
    ])
    def test_register_counts(self, kind, expected):
        protocol = OneShotSetAgreement(n=4, m=2, k=2)  # r = 6
        assert substrate_register_count(protocol, kind) == expected

    def test_unknown_kind_rejected(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=2)
        with pytest.raises(ConfigurationError):
            implemented_snapshot_layout(protocol, "quantum")

    def test_extra_objects_preserved(self):
        """Figure 5's register H survives the substrate swap."""
        protocol = AnonymousRepeatedSetAgreement(n=3, m=1, k=2)
        layout = implemented_snapshot_layout(protocol, "anonymous-double-collect")
        assert "H" in layout.object_names
        # components registers + H
        assert layout.register_count() == protocol.components + 1


class TestFrameExecution:
    def test_protocol_oblivious_to_substrate(self):
        """Identical solo schedule shape: the protocol sees the same
        responses whether the snapshot is atomic or implemented."""
        protocol = OneShotSetAgreement(n=3, m=1, k=1)
        atomic = System(protocol, workloads=[["a"], ["b"], ["c"]])
        framed = System(
            protocol,
            workloads=[["a"], ["b"], ["c"]],
            layout=implemented_snapshot_layout(protocol, "double-collect"),
        )
        out_a = run(atomic, SoloScheduler(0), max_steps=10_000)
        out_f = run(framed, SoloScheduler(0), max_steps=10_000)
        assert out_a.config.procs[0].outputs == out_f.config.procs[0].outputs

    def test_frame_events_marked(self):
        protocol = OneShotSetAgreement(n=3, m=1, k=1)
        framed = System(
            protocol,
            workloads=[["a"], ["b"], ["c"]],
            layout=implemented_snapshot_layout(protocol, "double-collect"),
        )
        execution = run(framed, SoloScheduler(0), max_steps=10_000)
        assert all(e.in_frame for e in execution.memory_events)

    def test_frame_bank_discipline_enforced(self):
        """An implementation touching a bank it does not own is rejected."""

        class RogueImpl(ObjectImplementation):
            name = "rogue"

            def bank_specs(self, prefix):
                return (BankSpec(name=f"{prefix}__own", size=1),)

            def begin(self, ictx, persistent, op):
                return "started"

            def pending(self, ictx, state):
                return ReadOp("elsewhere__bank", 0)

            def apply(self, ictx, state, response):
                return state

        from repro.memory.layout import merge_layouts, register_layout

        impl = RogueImpl(Params())
        own = MemoryLayout(
            impl.bank_specs("A"),
            {"A": ImplementedBinding(impl, ("A__own",))},
        )
        layout = merge_layouts(own, register_layout("elsewhere", 1))
        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        system = System(protocol, workloads=[["a"], ["b"]], layout=layout)
        with pytest.raises(ProtocolViolation, match="outside its"):
            run(system, SoloScheduler(0), max_steps=100)

    def test_frame_must_issue_register_ops_only(self):
        class ScanningImpl(ObjectImplementation):
            name = "scanning"

            def bank_specs(self, prefix):
                return (BankSpec(name=f"{prefix}__own", size=1),)

            def begin(self, ictx, persistent, op):
                return "started"

            def pending(self, ictx, state):
                return ScanOp("A__own")

            def apply(self, ictx, state, response):
                return state

        impl = ScanningImpl(Params())
        layout = MemoryLayout(
            impl.bank_specs("A"),
            {"A": ImplementedBinding(impl, ("A__own",))},
        )
        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        system = System(protocol, workloads=[["a"], ["b"]], layout=layout)
        with pytest.raises(ProtocolViolation, match="register reads/writes"):
            run(system, SoloScheduler(0), max_steps=100)

    def test_object_persistent_state_threads_through(self):
        """Sequence numbers advance across operations of one process."""
        impl = DoubleCollectSnapshot(Params(components=2, n=2))
        ictx = ImplContext(pid=0, n=2, params=impl.params, banks=("b",))
        persistent = impl.initial_persistent(ictx)
        for expected_seq in (1, 2, 3):
            frame = impl.begin(ictx, persistent, UpdateOp("A", 0, "v"))
            frame = impl.apply(ictx, frame, None)
            result = impl.pending(ictx, frame)
            assert isinstance(result, Return)
            persistent = result.persistent
            assert persistent == expected_seq
