"""Per-rule tests for the determinism/purity lint.

Each seeded fixture under ``tests/fixtures/analysis`` must trip exactly
its rule (detection), the near-miss gauntlet must trip nothing
(non-detection), and the shipped tree must be clean — the same claim the
CI gate makes via ``repro analyze --strict src/repro``.
"""

import pathlib

import pytest

from repro.analysis.determinism import (
    SLOTS_SCOPE,
    STATE_SCOPE,
    STEP_PATH_SCOPE,
    in_scope,
    lint_file,
    lint_paths,
)
from repro.analysis.report import RULES, suppressed, suppressions

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures" / "analysis"
SRC = pathlib.Path(__file__).parent.parent.parent / "src" / "repro"


def lint_all_rules(name):
    """Lint one fixture with every rule group force-enabled."""
    return lint_file(
        str(FIXTURES / name), det=True, frozen_rule=True, slots_rule=True
    )


# --------------------------------------------------------------------- #
# Detection: each seeded fixture trips its rule
# --------------------------------------------------------------------- #

FIXTURE_RULES = [
    ("det001_time.py", "DET001"),
    ("det002_random.py", "DET002"),
    ("det003_id.py", "DET003"),
    ("det004_set_iter.py", "DET004"),
    ("det005_env.py", "DET005"),
    ("mut001_setattr.py", "MUT001"),
    ("mut002_unfrozen.py", "MUT002"),
    ("mut003_noslots.py", "MUT003"),
]


@pytest.mark.parametrize("fixture,rule", FIXTURE_RULES)
def test_seeded_fixture_trips_its_rule(fixture, rule):
    findings = lint_all_rules(fixture)
    assert any(f.rule == rule for f in findings), (
        f"{fixture} should trip {rule}, got {[f.rule for f in findings]}"
    )


@pytest.mark.parametrize("fixture,rule", FIXTURE_RULES)
def test_seeded_fixture_trips_only_its_rule(fixture, rule):
    findings = lint_all_rules(fixture)
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("fixture,rule", FIXTURE_RULES)
def test_findings_carry_location_and_severity(fixture, rule):
    for finding in lint_all_rules(fixture):
        assert finding.file.endswith(fixture)
        assert finding.line > 0
        assert finding.severity == RULES[finding.rule][0]
        assert f"[{rule}]" in finding.render()


def test_det002_flags_both_global_rng_and_unseeded_random():
    lines = {f.line for f in lint_all_rules("det002_random.py")}
    assert len(lines) == 2  # random.choice(...) and Random()


def test_mut001_flags_both_assignment_and_object_setattr():
    messages = [f.message for f in lint_all_rules("mut001_setattr.py")]
    assert len(messages) == 2
    assert any("config.steps" in m for m in messages)
    assert any("__setattr__" in m for m in messages)


# --------------------------------------------------------------------- #
# Non-detection: near-misses and suppressions stay silent
# --------------------------------------------------------------------- #

def test_known_good_gauntlet_is_clean():
    assert lint_all_rules("known_good.py") == []


def test_suppression_comment_silences_the_rule():
    assert lint_all_rules("suppressed.py") == []


def test_suppression_is_per_rule_not_blanket():
    source = "x = 1  # repro: allow(DET001)\n"
    table = suppressions(source)
    assert suppressed(table, 1, "DET001")
    assert not suppressed(table, 1, "DET002")
    # A *trailing* comment covers only its own line — the old blanket
    # carry-over let an allow on one statement leak onto the next.
    assert not suppressed(table, 2, "DET001")
    assert not suppressed(table, 3, "DET001")


def test_own_line_suppression_covers_the_statement_below():
    source = "# repro: allow(DET001)\nx = time.time()\n"
    table = suppressions(source)
    assert suppressed(table, 1, "DET001")
    assert suppressed(table, 2, "DET001")
    assert not suppressed(table, 3, "DET001")


def test_trailing_suppression_does_not_leak_onto_the_next_line():
    # The regression the carry-over fix exists for: an allow trailing a
    # decorator line must not silence a finding on the def below it.
    findings = lint_all_rules("carryover_leak.py")
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].line == 5


def test_docstring_mention_of_allow_syntax_is_not_a_suppression():
    source = '"""docs say # repro: allow(DET001) here"""\nx = 1\n'
    assert suppressions(source) == {}


def test_suppression_accepts_rule_lists():
    table = suppressions("y = 2  # repro: allow(DET001, MUT002)\n")
    assert suppressed(table, 1, "DET001")
    assert suppressed(table, 1, "MUT002")


# --------------------------------------------------------------------- #
# Scoping
# --------------------------------------------------------------------- #

def test_step_path_scope_matches_expected_modules():
    assert in_scope("src/repro/agreement/oneshot.py", STEP_PATH_SCOPE)
    assert in_scope("src/repro/runtime/system.py", STEP_PATH_SCOPE)
    # Wall-clock reads are the watchdog's job; it is out of scope by design.
    assert not in_scope("src/repro/durable/watchdog.py", STEP_PATH_SCOPE)
    assert not in_scope("src/repro/analysis/report.py", STEP_PATH_SCOPE)


def test_spec_is_state_scope_but_not_step_path():
    assert in_scope("src/repro/spec/progress.py", STATE_SCOPE)
    assert not in_scope("src/repro/spec/progress.py", STEP_PATH_SCOPE)
    assert in_scope("src/repro/spec/progress.py", SLOTS_SCOPE)


def test_out_of_scope_file_gets_no_findings_by_default():
    # The fixtures live outside every scope table, so default-scoped
    # linting must not flag them at all.
    findings = lint_file(str(FIXTURES / "det001_time.py"))
    assert findings == []


# --------------------------------------------------------------------- #
# The shipped tree is clean (the CI gate's claim, as a unit test)
# --------------------------------------------------------------------- #

def test_shipped_tree_has_no_findings():
    report = lint_paths([str(SRC)])
    assert report.findings == [], report.render()
    assert report.files_scanned > 50
