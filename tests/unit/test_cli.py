"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestBounds:
    def test_prints_all_cells(self, capsys):
        assert main(["bounds", "--n", "5", "--m", "1", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
        assert "Theorem 11" in out
        assert out.count("anonymous") >= 4

    def test_upper_cells_render_as_at_most(self, capsys):
        main(["bounds", "--n", "5", "--m", "1", "--k", "2"])
        out = capsys.readouterr().out
        assert "<= 5 (Theorem 8)" in out
        assert ">= 4 (Theorem 2)" in out


class TestRun:
    def test_bounded_run_exits_zero(self, capsys):
        code = main([
            "run", "--protocol", "oneshot", "--n", "4", "--m", "1",
            "--k", "2", "--scheduler", "bounded", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "instance 1: outputs" in out
        assert "registers: 4" in out
        # the header echoes the effective seed and schedule parameters,
        # so a pasted transcript is reproducible on its own
        assert "scheduler: bounded (seed 3" in out
        assert "max-steps" in out

    def test_repeated_multi_instance(self, capsys):
        code = main([
            "run", "--protocol", "repeated", "--n", "3", "--m", "1",
            "--k", "1", "--instances", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "instance 2: outputs" in out

    def test_substrate_selection(self, capsys):
        code = main([
            "run", "--protocol", "oneshot", "--n", "3", "--m", "1",
            "--k", "1", "--substrate", "swmr",
        ])
        assert code == 0
        assert "registers: 3" in capsys.readouterr().out

    def test_underprovisioned_run_can_flag_violation(self, capsys):
        """Round-robin on a starved one-shot instance that violates: the CLI
        exits 1 and prints the violation when one occurs (we pick a seed
        and schedule known to produce one via the explorer's witness)."""
        code = main([
            "run", "--protocol", "oneshot", "--n", "2", "--m", "1",
            "--k", "1", "--components", "2", "--scheduler", "round-robin",
            "--max-steps", "500",
        ])
        out = capsys.readouterr().out
        if code == 1:
            assert "VIOLATION" in out
        else:
            assert "VIOLATION" not in out

    def test_diagram_flag(self, capsys):
        main([
            "run", "--protocol", "oneshot", "--n", "2", "--m", "1",
            "--k", "1", "--diagram",
        ])
        out = capsys.readouterr().out
        assert "I=invoke" in out


class TestExplore:
    def test_safe_instance_exits_zero(self, capsys):
        code = main(["explore", "--protocol", "oneshot", "--n", "2",
                     "--m", "1", "--k", "1"])
        assert code == 0
        assert "no violations" in capsys.readouterr().out

    def test_violation_exits_one_with_witness(self, capsys):
        code = main(["explore", "--protocol", "oneshot", "--n", "2",
                     "--m", "1", "--k", "1", "--components", "2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "witness schedule" in out


class TestFaults:
    def test_crash_family_exits_zero_all_safe(self, capsys):
        code = main(["faults", "--protocol", "oneshot", "--n", "4",
                     "--m", "2", "--k", "2", "--plan-family", "crashes",
                     "--trials", "5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 certified violations" in out
        assert "POSITIVE CONTROL FAILED" not in out

    def test_corruption_family_exits_one_with_certified_witness(self, capsys):
        code = main(["faults", "--protocol", "oneshot", "--n", "4",
                     "--m", "2", "--k", "2", "--plan-family", "corruption",
                     "--trials", "4", "--seed", "3", "--budget", "4000",
                     "--retry-budget", "1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "certified:" in out
        assert "Validity" in out or "k-Agreement" in out

    def test_same_seed_same_report(self, capsys):
        argv = ["faults", "--protocol", "anonymous-oneshot", "--n", "3",
                "--m", "1", "--k", "1", "--plan-family", "corruption",
                "--trials", "4", "--seed", "8", "--retry-budget", "1"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        # Strip the wall-clock from the summary line before comparing.
        strip = lambda s: [l.split(" retries")[0] for l in s.splitlines()]
        assert strip(first) == strip(second)


class TestExitCodeDiscipline:
    def test_repro_errors_exit_two_on_stderr(self, capsys):
        # n=0 is a ConfigurationError raised from protocol construction:
        # the dispatch wrapper must turn it into exit 2 on stderr for any
        # command, not just explore.
        code = main(["run", "--protocol", "oneshot", "--n", "0"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err

    def test_faults_config_error_exits_two(self, capsys):
        code = main(["faults", "--protocol", "oneshot", "--n", "0",
                     "--plan-family", "crashes"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli.COMMANDS, "bounds", interrupted)
        code = main(["bounds"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_exits_141(self, monkeypatch):
        # ``repro analyze --rules | head`` closes stdout mid-print; the
        # dispatcher must exit with the POSIX SIGPIPE death code instead
        # of leaking a traceback, and must not claim a clean verdict.
        import os

        from repro import cli

        def pipe_died(args):
            raise BrokenPipeError

        monkeypatch.setitem(cli.COMMANDS, "bounds", pipe_died)
        # The handler points the stdout fd at /dev/null; restore it so
        # pytest's fd-level capture keeps working after this test.
        import sys

        fd = sys.stdout.fileno()
        saved = os.dup(fd)
        try:
            code = main(["bounds"])
        finally:
            os.dup2(saved, fd)
            os.close(saved)
        assert code == 141


class TestCovering:
    def test_default_registers_produce_violation(self, capsys):
        code = main(["covering", "--n", "3", "--m", "1", "--k", "1"])
        assert code == 0  # success = violation certified
        out = capsys.readouterr().out
        assert "violation certified" in out


class TestGlue:
    def test_glue_succeeds(self, capsys):
        code = main(["glue", "--k", "1", "--registers", "2"])
        assert code == 0
        assert "violation certified" in capsys.readouterr().out


class TestCertificates:
    def test_covering_saves_and_verify_accepts(self, capsys, tmp_path):
        path = tmp_path / "cert.json"
        code = main(["covering", "--n", "3", "--m", "1", "--k", "1",
                     "--save-certificate", str(path)])
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_verify_rejects_tampered_certificate(self, capsys, tmp_path):
        import json

        path = tmp_path / "cert.json"
        main(["covering", "--n", "3", "--m", "1", "--k", "1",
              "--save-certificate", str(path)])
        payload = json.loads(path.read_text())
        payload["schedule"] = payload["schedule"][:3]
        path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["verify", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "quantum"])
