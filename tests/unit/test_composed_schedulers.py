"""Unit tests for the scheduler combinators."""

import pytest

from repro import (
    RoundRobinScheduler,
    SoloScheduler,
    System,
    TrivialSetAgreement,
    run,
)
from repro.sched.composed import InterleavedScheduler, PhasedScheduler


def trivial_system(n=3, per_proc=4):
    protocol = TrivialSetAgreement(n=n, k=n)
    return System(
        protocol,
        workloads=[[f"v{p}.{j}" for j in range(per_proc)] for p in range(n)],
    )


class TestPhased:
    def test_phases_execute_in_order(self):
        scheduler = PhasedScheduler([
            (3, SoloScheduler(0)),
            (2, SoloScheduler(1)),
            (0, RoundRobinScheduler()),
        ])
        execution = run(trivial_system(), scheduler)
        assert execution.schedule[:3] == [0, 0, 0]
        assert execution.schedule[3:5] == [1, 1]

    def test_early_handover_on_none(self):
        # Solo p0 halts after 8 steps (4 invocations x 2); phase budget 50.
        scheduler = PhasedScheduler([
            (50, SoloScheduler(0)),
            (0, SoloScheduler(1)),
        ])
        execution = run(trivial_system(), scheduler)
        assert execution.schedule[:8] == [0] * 8
        assert execution.schedule[8] == 1

    def test_last_phase_none_ends_run(self):
        scheduler = PhasedScheduler([(0, SoloScheduler(2))])
        execution = run(trivial_system(), scheduler)
        assert set(execution.schedule) == {2}
        assert not execution.config.procs[0].outputs

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedScheduler([])

    def test_reset_restores_all_phases(self):
        scheduler = PhasedScheduler([
            (2, SoloScheduler(0)),
            (0, SoloScheduler(1)),
        ])
        first = run(trivial_system(), scheduler)
        second = run(trivial_system(), scheduler)  # run() resets
        assert first.schedule == second.schedule


class TestInterleaved:
    def test_alternates_constituents(self):
        scheduler = InterleavedScheduler([SoloScheduler(0), SoloScheduler(1)])
        execution = run(trivial_system(), scheduler)
        assert execution.schedule[:4] == [0, 1, 0, 1]

    def test_skips_exhausted_constituent(self):
        scheduler = InterleavedScheduler([SoloScheduler(0), SoloScheduler(1)])
        execution = run(trivial_system(n=2, per_proc=1), scheduler)
        # p0 halts after 2 steps; thereafter only p1's turns produce steps.
        assert execution.schedule == [0, 1, 0, 1]

    def test_all_declining_ends_run(self):
        scheduler = InterleavedScheduler([SoloScheduler(0)])
        execution = run(trivial_system(n=2, per_proc=1), scheduler)
        assert set(execution.schedule) == {0}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            InterleavedScheduler([])
