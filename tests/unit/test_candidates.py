"""Tests running Appendix B's candidate bookkeeping on real executions.

The checkable renditions of the Appendix B machinery:

1. (unconditional) one step changes any value's ``mult`` by at most +1 —
   updates move a poised preference into a component (net ≤ 0 for that
   value), scans can re-poise at most the stepping process;
2. (unconditional, Figure 5 lines 27-28) whenever a process's preference
   *changes* at a scan, the adopted value had ≥ ℓ component support in the
   scanned memory;
3. (the Lemma 18 step-invariant, in its endgame regime) once every process
   is past its ``H`` write in a single-instance run, a value with
   ``mult < ℓ`` never regains ``mult ≥ ℓ``.
"""

from repro import AnonymousRepeatedSetAgreement, RandomScheduler, System
from repro.agreement.anonymous import LoopThreadState, SCAN, UPDATE, WRITE_H
from repro.analysis.candidates import (
    all_tracked_values,
    component_support,
    lemma18_step_preserves_submult,
    mult,
    poised_preferences,
)
from repro.bench.workloads import clustered_inputs, distinct_inputs
from repro.memory.ops import ScanOp
from repro.runtime.events import MemoryEvent


def make_system(n=4, m=1, k=2, clusters=None):
    protocol = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
    workloads = (
        clustered_inputs(n, clusters=clusters)
        if clusters
        else distinct_inputs(n)
    )
    return System(protocol, workloads=workloads)


def walk(system, seed, steps):
    """Yield (before, event, after) triples along a random execution."""
    scheduler = RandomScheduler(seed=seed)
    scheduler.reset()
    config = system.initial_configuration()
    for index in range(steps):
        enabled = system.enabled_pids(config)
        if not enabled:
            return
        pid = scheduler.choose(config, system, enabled, index)
        result = system.step(config, pid)
        yield config, result.event, result.config
        config = result.config


class TestMultAccounting:
    def test_initial_mult_zero(self):
        system = make_system()
        config = system.initial_configuration()
        assert mult(system, config, "v0.0", 1) == 0

    def test_mult_counts_components_and_poised(self):
        system = make_system(n=4, m=1, k=2, clusters=2)
        # Step two same-input processes to their poised-update states.
        config = system.initial_configuration()
        for pid in (0, 2):  # both propose cluster value c0.0
            for _ in range(2):  # invoke, write H
                config = system.step(config, pid).config
        poised = poised_preferences(system, config, 1)
        assert poised.get("c0.0", 0) == 2
        assert component_support(config, 1) == {}
        assert mult(system, config, "c0.0", 1) == 2

    def test_step_changes_mult_by_at_most_one(self):
        for seed in (1, 2, 3):
            system = make_system(n=4, m=2, k=3, clusters=2)
            for before, event, after in walk(system, seed, 300):
                for value in all_tracked_values(system, after, 1):
                    delta = mult(system, after, value, 1) - mult(
                        system, before, value, 1
                    )
                    assert delta <= 1, (value, event)


class TestAdoptionThreshold:
    def test_pref_changes_only_to_ell_supported_values(self):
        ell = None
        for seed in range(5):
            system = make_system(n=5, m=1, k=3, clusters=2)
            ell = system.automaton.ell
            for before, event, after in walk(system, seed, 400):
                if not (isinstance(event, MemoryEvent)
                        and isinstance(event.op, ScanOp)):
                    continue
                pid = event.pid
                pre = before.procs[pid].active
                post = after.procs[pid].active
                if pre is None or post is None:
                    continue
                pre_state = pre.slots[0].state
                post_state = post.slots[0].state
                if not isinstance(pre_state, LoopThreadState):
                    continue
                if not isinstance(post_state, LoopThreadState):
                    continue
                if post_state.phase not in (UPDATE, SCAN):
                    continue
                if pre_state.pref != post_state.pref:
                    support = component_support(before, pre_state.t).get(
                        post_state.pref, 0
                    )
                    assert support >= ell, (
                        f"adopted {post_state.pref!r} with support "
                        f"{support} < ell {ell}"
                    )

    def test_lemma18_case_analysis(self):
        """The precise, unconditional core of Lemma 18's proof: the only
        step that can lift a sub-ℓ value back to ℓ is a scan-apply that
        *kept* its preference — which lines 27-28 permit only when **no**
        value had ℓ component support in the scanned memory.  (In the
        proof's endgame, Lemma 17 rules that situation out, completing the
        argument; before the endgame it genuinely happens, which is why the
        invariant is conditional in the paper.)"""
        for seed in range(5):
            system = make_system(n=4, m=1, k=2)
            ell = system.automaton.ell
            for before, event, after in walk(system, seed, 500):
                if lemma18_step_preserves_submult(
                    system, before, after, instance=1, ell=ell
                ):
                    continue
                # The invariant broke: per the proof's case analysis, the
                # pre-step memory must have had no ℓ-supported value.
                support = component_support(before, 1)
                assert all(count < ell for count in support.values()), (
                    f"sub-ℓ value regained ℓ support although "
                    f"{support} had an ℓ-supported value (seed {seed})"
                )
