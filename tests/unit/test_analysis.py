"""Unit tests for the execution-analytics package."""

from repro import (
    OneShotSetAgreement,
    RandomScheduler,
    SoloScheduler,
    System,
    run,
    run_solo,
)
from repro.analysis import (
    concurrency_profile,
    convergence_step,
    distinct_values_over_time,
    location_advances,
    preference_changes,
)
from repro.analysis.contention import write_density
from repro.bench.sweep import bounded_adversary_run
from repro.bench.workloads import distinct_inputs


def solo_execution(n=3):
    system = System(OneShotSetAgreement(n=n, m=1, k=1),
                    workloads=distinct_inputs(n))
    return run_solo(system, 0)


def contended_execution(n=4, m=1, k=1, seed=5):
    system = System(OneShotSetAgreement(n=n, m=m, k=k),
                    workloads=distinct_inputs(n))
    return bounded_adversary_run(system, survivors=[0], seed=seed)


class TestPreferenceChanges:
    def test_solo_never_changes_preference(self):
        execution = solo_execution()
        changes = preference_changes(execution)
        assert changes.get(0, 0) == 0

    def test_contended_runs_can_change_preferences(self):
        total = 0
        for seed in range(6):
            execution = contended_execution(seed=seed)
            total += sum(preference_changes(execution).values())
        assert total > 0  # some adoption happened across seeds


class TestLocationAdvances:
    def test_solo_advances_through_components(self):
        execution = solo_execution()
        advances = location_advances(execution)
        # A solo consensus run sweeps enough components to fill the
        # snapshot with its own pairs: at least r-1 advances.
        r = execution.system.automaton.components
        assert advances[0] >= r - 1

    def test_dichotomy_accounting(self):
        """Each update is preceded by either an adoption or an advance
        (except the first): changes + advances <= updates - 1 per process."""
        from repro.memory.ops import UpdateOp

        execution = contended_execution(seed=3)
        changes = preference_changes(execution)
        advances = location_advances(execution)
        updates = {}
        for event in execution.memory_events:
            if isinstance(event.op, UpdateOp):
                updates[event.pid] = updates.get(event.pid, 0) + 1
        for pid, count in updates.items():
            assert changes.get(pid, 0) + advances.get(pid, 0) <= count


class TestConcurrencyProfile:
    def test_profile_length_matches_steps(self):
        execution = contended_execution()
        profile = concurrency_profile(execution)
        assert len(profile) == execution.steps

    def test_solo_profile_peaks_at_one(self):
        execution = solo_execution()
        assert max(concurrency_profile(execution)) == 1

    def test_contended_profile_exceeds_one(self):
        execution = contended_execution(n=4)
        assert max(concurrency_profile(execution)) >= 2


class TestWriteDensity:
    def test_between_zero_and_one(self):
        execution = contended_execution()
        assert 0.0 <= write_density(execution) <= 1.0

    def test_empty_execution(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        execution = run(system, SoloScheduler(0), max_steps=0,
                        on_limit="return")
        assert write_density(execution) == 0.0


class TestConvergence:
    def test_distinct_values_series_bounds(self):
        execution = contended_execution(n=4)
        series = distinct_values_over_time(execution)
        assert len(series) == execution.steps
        assert all(0 <= v <= 4 for v in series)

    def test_solo_converges_immediately(self):
        execution = solo_execution()
        step = convergence_step(execution, m=1)
        assert step is not None
        assert step <= 2  # after its first update only its value is present

    def test_bounded_episode_converges(self):
        """Corollary 6 operationally: after the m-bounded tail, at most m
        values live in the snapshot."""
        execution = contended_execution(n=4, seed=9)
        step = convergence_step(execution, m=1)
        assert step is not None
        series = distinct_values_over_time(execution)
        assert all(v <= 1 for v in series[step:])
