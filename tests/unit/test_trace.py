"""Unit tests for trace diagrams and export."""

import json

from repro import OneShotSetAgreement, RoundRobinScheduler, System, replay, run
from repro.trace import (
    execution_to_jsonl,
    load_schedule,
    register_timeline,
    save_schedule,
    space_time_diagram,
)


def small_execution():
    protocol = OneShotSetAgreement(n=2, m=1, k=1)
    system = System(protocol, workloads=[["a"], ["b"]])
    return run(system, RoundRobinScheduler(), max_steps=10_000)


class TestDiagram:
    def test_one_lane_per_process(self):
        execution = small_execution()
        diagram = space_time_diagram(execution)
        lines = diagram.splitlines()
        assert any(line.startswith("p0") for line in lines)
        assert any(line.startswith("p1") for line in lines)

    def test_glyph_counts_match_events(self):
        execution = small_execution()
        diagram = space_time_diagram(execution)
        body = "\n".join(
            line for line in diagram.splitlines() if line.startswith("p")
        )
        assert body.count("I") == 2  # two invocations
        assert body.count("D") == 2  # two decisions

    def test_windowing(self):
        execution = small_execution()
        diagram = space_time_diagram(execution, start=2, length=3)
        lane = next(l for l in diagram.splitlines() if l.startswith("p0"))
        # 3 columns only (after the "p0    " prefix)
        assert len(lane.split()[-1]) == 3

    def test_lane_restriction(self):
        execution = small_execution()
        diagram = space_time_diagram(execution, pids=[1])
        assert "p0" not in diagram

    def test_register_timeline_lists_writes(self):
        execution = small_execution()
        timeline = register_timeline(execution)
        assert "r[0.0]" in timeline
        assert "@p" in timeline

    def test_register_timeline_empty(self):
        from repro import TrivialSetAgreement

        system = System(TrivialSetAgreement(n=2, k=2), workloads=[["a"], ["b"]])
        execution = run(system, RoundRobinScheduler())
        assert register_timeline(execution) == "(no writes)"


class TestExport:
    def test_schedule_roundtrip(self, tmp_path):
        execution = small_execution()
        path = tmp_path / "schedule.json"
        save_schedule(execution, path, note="unit test")
        loaded = load_schedule(path)
        assert loaded == execution.schedule
        # And the loaded schedule replays to the same outputs.
        protocol = OneShotSetAgreement(n=2, m=1, k=1)
        system = System(protocol, workloads=[["a"], ["b"]])
        again = replay(system, loaded)
        assert again.outputs() == execution.outputs()

    def test_metadata_recorded(self, tmp_path):
        execution = small_execution()
        path = tmp_path / "schedule.json"
        save_schedule(execution, path, note="hello")
        payload = json.loads(path.read_text())
        assert payload["protocol"] == "oneshot-figure3"
        assert payload["note"] == "hello"
        assert payload["n"] == 2

    def test_jsonl_one_record_per_event(self):
        execution = small_execution()
        lines = execution_to_jsonl(execution).splitlines()
        assert len(lines) == len(execution.events)
        first = json.loads(lines[0])
        assert first["kind"] == "invoke"
        assert first["step"] == 0

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "schedule": []}))
        import pytest
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            load_schedule(path)
