"""Unit tests for the bounded, journaled admission queue."""

import pytest

from repro.serve.protocol import VerifyJob
from repro.serve.queue import Backpressure, JobQueue, Ticket


def jobs(count):
    return [VerifyJob(seed=i + 1) for i in range(count)]


class TestBounding:
    def test_admits_up_to_capacity_then_backpressure(self):
        queue = JobQueue(2, retry_after=0.25)
        a, b = jobs(2)
        assert isinstance(queue.admit(a), Ticket)
        assert isinstance(queue.admit(b), Ticket)
        refused = queue.admit(VerifyJob(seed=99))
        assert isinstance(refused, Backpressure)
        assert refused.retry_after == 0.25
        assert refused.depth == 2 and refused.capacity == 2
        assert "retry after" in refused.describe()
        assert queue.rejected_total == 1

    def test_in_flight_jobs_still_count_against_capacity(self):
        """Backpressure must reflect queued + running work, or a slow job
        would let the queue re-admit past its bound."""
        queue = JobQueue(1)
        queue.admit(VerifyJob(seed=1))
        taken = queue.take(timeout=0)
        assert taken is not None
        assert queue.depth() == 0 and queue.in_flight() == 1
        assert isinstance(queue.admit(VerifyJob(seed=2)), Backpressure)
        queue.mark_done(taken[0])
        assert isinstance(queue.admit(VerifyJob(seed=2)), Ticket)

    def test_fifo_order(self):
        queue = JobQueue(8)
        submitted = jobs(5)
        for job in submitted:
            queue.admit(job)
        taken = [queue.take(timeout=0)[1] for _ in range(5)]
        assert taken == submitted

    def test_take_times_out_empty(self):
        queue = JobQueue(2)
        assert queue.take(timeout=0.01) is None

    def test_requeue_puts_job_back_at_front(self):
        queue = JobQueue(4)
        first, second = jobs(2)
        queue.admit(first)
        queue.admit(second)
        seq, job = queue.take(timeout=0)
        queue.requeue(seq)
        assert queue.take(timeout=0) == (seq, first)

    def test_closed_queue_refuses(self):
        queue = JobQueue(4)
        queue.close()
        assert isinstance(queue.admit(VerifyJob()), Backpressure)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(0)


class TestJournaledResume:
    def test_pending_jobs_survive_a_drop(self, tmp_path):
        """Admit four, finish one, drop the queue object (simulating a
        crash — close() is never called), rebuild: the three unfinished
        jobs are pending again, in admission order."""
        queue = JobQueue(8, journal_dir=tmp_path / "jobs")
        submitted = jobs(4)
        tickets = [queue.admit(job) for job in submitted]
        assert all(isinstance(t, Ticket) for t in tickets)
        seq, _ = queue.take(timeout=0)
        queue.mark_done(seq)
        queue._journal.close()  # release the flock; the state is on disk

        resumed = JobQueue(8, journal_dir=tmp_path / "jobs")
        replayed = [resumed.take(timeout=0)[1] for _ in range(3)]
        assert replayed == submitted[1:]
        assert resumed.take(timeout=0.01) is None
        assert resumed.recovery is not None

    def test_zero_accepted_job_loss_under_interleaved_churn(self, tmp_path):
        """Every job whose admit() returned a Ticket is either completed
        or replayed — never silently dropped — across a crash at an
        arbitrary point in an admit/complete interleaving."""
        queue = JobQueue(64, journal_dir=tmp_path / "jobs")
        accepted = []
        completed = set()
        for i in range(20):
            ticket = queue.admit(VerifyJob(seed=i + 1))
            assert isinstance(ticket, Ticket)
            accepted.append((ticket.seq, i + 1))
            if i % 3 == 0:
                seq, job = queue.take(timeout=0)
                queue.mark_done(seq)
                completed.add(seq)
        queue._journal.close()

        resumed = JobQueue(64, journal_dir=tmp_path / "jobs")
        replayed_seeds = set()
        while True:
            item = resumed.take(timeout=0)
            if item is None:
                break
            replayed_seeds.add(item[1].seed)
        expected = {seed for seq, seed in accepted if seq not in completed}
        assert replayed_seeds == expected

    def test_resume_after_graceful_close_checkpoints_pending(self, tmp_path):
        queue = JobQueue(8, journal_dir=tmp_path / "jobs")
        submitted = jobs(3)
        for job in submitted:
            queue.admit(job)
        queue.close()  # checkpoint + release

        resumed = JobQueue(8, journal_dir=tmp_path / "jobs")
        replayed = [resumed.take(timeout=0)[1] for _ in range(3)]
        assert replayed == submitted

    def test_compaction_preserves_pending(self, tmp_path):
        """Force a checkpoint mid-stream and confirm replay still sees
        exactly the unfinished jobs."""
        queue = JobQueue(8, journal_dir=tmp_path / "jobs")
        submitted = jobs(5)
        for job in submitted:
            queue.admit(job)
        for _ in range(2):
            seq, _ = queue.take(timeout=0)
            queue.mark_done(seq)
        with queue._lock:
            queue._checkpoint_locked()
        queue._journal.close()

        resumed = JobQueue(8, journal_dir=tmp_path / "jobs")
        replayed = []
        while True:
            item = resumed.take(timeout=0)
            if item is None:
                break
            replayed.append(item[1])
        assert replayed == submitted[2:]

    def test_unjournaled_queue_needs_no_directory(self):
        queue = JobQueue(2)
        assert queue.recovery is None
        queue.close()
