"""Unit tests for the fragment-search primitives."""

from repro import RepeatedSetAgreement, OneShotSetAgreement, System
from repro.lowerbounds.fragments import (
    CLOSED,
    FOUND,
    UNKNOWN,
    find_distinct_decisions,
    find_write_outside,
    poised_write_outside,
)
from repro.memory.layout import RegisterCoord
from repro.runtime.runner import replay


def repeated_system(n=3, m=1, k=1, components=2, instances=6):
    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=components)
    workloads = [[f"p{i}.{t}" for t in range(instances)] for i in range(n)]
    return System(protocol, workloads=workloads)


class TestPoised:
    def test_initial_process_not_poised_before_invoke(self):
        system = repeated_system()
        config = system.initial_configuration()
        # First step is an invocation, not a write.
        assert poised_write_outside(system, config, 0, frozenset()) is None

    def test_poised_after_invoke(self):
        system = repeated_system()
        config = system.step(system.initial_configuration(), 0).config
        coord = poised_write_outside(system, config, 0, frozenset())
        assert coord == RegisterCoord(0, 0)

    def test_allowed_set_masks(self):
        system = repeated_system()
        config = system.step(system.initial_configuration(), 0).config
        allowed = frozenset({RegisterCoord(0, 0)})
        assert poised_write_outside(system, config, 0, allowed) is None


class TestFindWriteOutside:
    def test_finds_first_write_immediately(self):
        system = repeated_system()
        search = find_write_outside(
            system, system.initial_configuration(), [0], frozenset()
        )
        assert search.status == FOUND
        assert search.poised_pid == 0
        assert search.coord == RegisterCoord(0, 0)
        assert len(search.schedule) == 1  # just the invocation

    def test_schedule_leads_to_poised_config(self):
        system = repeated_system()
        search = find_write_outside(
            system, system.initial_configuration(), [0],
            frozenset({RegisterCoord(0, 0)}),
        )
        assert search.status == FOUND
        execution = replay(system, search.schedule)
        assert poised_write_outside(
            system, execution.config, search.poised_pid,
            frozenset({RegisterCoord(0, 0)}),
        ) == search.coord

    def test_closure_when_all_registers_allowed(self):
        system = repeated_system(components=2, instances=3)
        allowed = frozenset({RegisterCoord(0, 0), RegisterCoord(0, 1)})
        search = find_write_outside(
            system, system.initial_configuration(), [0], allowed
        )
        assert search.status == CLOSED
        assert search.configs_explored > 0

    def test_unknown_on_budget(self):
        system = repeated_system(components=2, instances=6)
        allowed = frozenset({RegisterCoord(0, 0), RegisterCoord(0, 1)})
        search = find_write_outside(
            system, system.initial_configuration(), [0, 1], allowed,
            max_configs=3,
        )
        assert search.status == UNKNOWN


class TestFindDistinctDecisions:
    def test_solo_group(self):
        system = repeated_system(components=4, instances=2)
        schedule = find_distinct_decisions(
            system, system.initial_configuration(), [1], instance=2
        )
        assert schedule is not None
        execution = replay(system, schedule)
        assert len(execution.config.procs[1].outputs) >= 2

    def test_two_member_group_distinct_outputs(self):
        protocol = RepeatedSetAgreement(n=4, m=2, k=2)
        system = System(
            protocol, workloads=[[f"p{i}"] for i in range(4)]
        )
        schedule = find_distinct_decisions(
            system, system.initial_configuration(), [0, 1], instance=1
        )
        assert schedule is not None
        execution = replay(system, schedule)
        outputs = {execution.config.procs[0].outputs[0],
                   execution.config.procs[1].outputs[0]}
        assert len(outputs) == 2

    def test_impossible_request_returns_none(self):
        """Consensus (k=1, n=2... actually m=1) cannot give two distinct
        outputs to a group running in isolation if the algorithm is correct
        — the search must exhaust and return None on a SAFE algorithm."""
        protocol = OneShotSetAgreement(n=2, m=1, k=1)  # nominal r=3, safe
        system = System(protocol, workloads=[["a"], ["b"]])
        schedule = find_distinct_decisions(
            system, system.initial_configuration(), [0, 1], instance=1,
            max_configs=100_000,
        )
        assert schedule is None
