"""Unit tests for the ReproServer daemon core (in-process, serial mode)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve import client
from repro.serve.protocol import VerifyJob
from repro.serve.server import ReproServer, probe, resolve_endpoint

JOB = VerifyJob(mode="run", max_steps=500)
OTHER = VerifyJob(mode="run", max_steps=500, seed=2)


@pytest.fixture
def server(tmp_path):
    """A serial daemon with a live dispatcher thread."""
    srv = ReproServer(data_dir=tmp_path / "serve", serial=True,
                      queue_capacity=4)
    srv.start()
    exit_code = []
    thread = threading.Thread(
        target=lambda: exit_code.append(srv.serve_forever()), daemon=True
    )
    thread.start()
    yield srv
    srv.handle_request({"op": "shutdown"})
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert exit_code == [0]


class TestVerify:
    def test_cold_then_cached_same_fingerprint(self, server):
        cold = server.handle_request({"op": "verify", "job": JOB.descriptor()})
        assert cold["ok"] is True and cold["cached"] is False
        hit = server.handle_request({"op": "verify", "job": JOB.descriptor()})
        assert hit["ok"] is True and hit["cached"] is True
        assert hit["fingerprint"] == cold["fingerprint"]
        assert hit["verdict"] == cold["verdict"]
        assert server.cache_hits == 1 and server.cache_misses == 1

    def test_wait_false_accepts_then_result_catches_up(self, server):
        accepted = server.handle_request(
            {"op": "verify", "job": JOB.descriptor(), "wait": False}
        )
        assert accepted == {"ok": True, "accepted": True, "key": JOB.key,
                            "seq": accepted["seq"]}
        deadline = threading.Event()
        for _ in range(300):
            answer = server.handle_request({"op": "result", "key": JOB.key})
            if answer.get("ok"):
                break
            assert answer["pending"] is True
            deadline.wait(0.05)
        assert answer["ok"] is True
        assert answer["verdict"]["outcome"] in ("ok", "refuted")

    def test_result_unknown_key_is_pending(self, server):
        answer = server.handle_request({"op": "result", "key": "f" * 32})
        assert answer["ok"] is False and answer["pending"] is True

    def test_result_requires_a_key(self, server):
        answer = server.handle_request({"op": "result"})
        assert answer["ok"] is False and "key" in answer["error"]

    def test_bad_job_is_rejected_inline(self, server):
        answer = server.handle_request(
            {"op": "verify", "job": {"n": 0}}
        )
        assert answer["ok"] is False and "n" in answer["error"]

    def test_unknown_op_rejected(self, server):
        answer = server.handle_request({"op": "dance"})
        assert answer["ok"] is False and "unknown op" in answer["error"]

    def test_opless_request_rejected(self, server):
        assert server.handle_request({})["ok"] is False
        assert server.handle_request("verify")["ok"] is False


class TestBackpressure:
    def test_admission_past_capacity_is_busy_with_retry_after(self, tmp_path):
        """No dispatcher draining: the queue fills to capacity, and the
        next submission gets the explicit busy envelope."""
        srv = ReproServer(data_dir=tmp_path / "serve", serial=True,
                          queue_capacity=2, retry_after=0.5)
        try:
            jobs = [VerifyJob(seed=i + 1) for i in range(3)]
            for job in jobs[:2]:
                accepted = srv.handle_request(
                    {"op": "verify", "job": job.descriptor(), "wait": False}
                )
                assert accepted["ok"] is True
            busy = srv.handle_request(
                {"op": "verify", "job": jobs[2].descriptor(), "wait": False}
            )
            assert busy["ok"] is False
            assert busy["busy"] is True
            assert busy["retry_after"] == 0.5
            assert busy["depth"] == 2 and busy["capacity"] == 2
            assert "queue full" in busy["error"]
        finally:
            srv.close()

    def test_verify_after_shutdown_refused(self, tmp_path):
        srv = ReproServer(data_dir=tmp_path / "serve", serial=True)
        try:
            srv.handle_request({"op": "shutdown"})
            answer = srv.handle_request(
                {"op": "verify", "job": JOB.descriptor(), "wait": False}
            )
            assert answer["ok"] is False
            assert "shutting down" in answer["error"]
        finally:
            srv.close()


class TestCachePolicy:
    def test_incomplete_verdicts_are_never_cached(self, tmp_path):
        srv = ReproServer(data_dir=tmp_path / "serve", serial=True)
        try:
            srv.supervisor.run_job = lambda job, trace=None: {
                "outcome": "incomplete", "reason": "deadline",
                "job": job.descriptor(),
            }
            ticket = srv.queue.admit(JOB)
            seq, job = srv.queue.take(timeout=0)
            assert seq == ticket.seq
            srv._dispatch_one(seq, job)
            assert len(srv.store) == 0
            assert srv.store.get(JOB.key) is None
        finally:
            srv.close()

    def test_error_verdicts_are_never_cached(self, tmp_path):
        srv = ReproServer(data_dir=tmp_path / "serve", serial=True)
        try:
            srv.supervisor.run_job = lambda job, trace=None: {
                "outcome": "error", "detail": "boom",
                "job": job.descriptor(),
            }
            srv.queue.admit(JOB)
            seq, job = srv.queue.take(timeout=0)
            srv._dispatch_one(seq, job)
            assert len(srv.store) == 0
        finally:
            srv.close()


class TestStatus:
    def test_status_shape(self, server):
        server.handle_request({"op": "verify", "job": JOB.descriptor()})
        status = server.handle_request({"op": "status"})["status"]
        assert status["endpoint"] == f"{server.host}:{server.port}"
        assert status["queue"]["capacity"] == 4
        assert status["queue"]["accepted"] >= 1
        assert status["cache"]["entries"] == 1
        assert status["supervisor"]["degraded"] is True
        assert status["jobs_completed"] >= 1
        assert status["uptime_s"] >= 0


class TestSocketFrontEnd:
    def test_client_round_trip_over_tcp(self, server, tmp_path):
        host, port = resolve_endpoint(server.data_dir)
        assert (host, port) == (server.host, server.port)
        assert probe(host, port)
        cold = client.verify(host, port, JOB.descriptor())
        assert cold["ok"] is True and cold["cached"] is False
        hit = client.verify(host, port, JOB.descriptor())
        assert hit["cached"] is True
        assert hit["fingerprint"] == cold["fingerprint"]
        polled = client.status(host, port)
        assert polled["ok"] is True
        assert polled["status"]["cache"]["entries"] == 1

    def test_endpoint_file_missing_is_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="endpoint"):
            resolve_endpoint(tmp_path / "nowhere")

    def test_probe_dead_port_false(self, server):
        server_port = server.port
        # a port nothing listens on (the daemon's port + 1 may collide;
        # port 1 is reserved and always refused on CI hosts)
        assert probe("127.0.0.1", 1) is False
        assert probe("127.0.0.1", server_port) is True
