"""Unit tests for the Validity / k-Agreement checkers."""

import pytest

from repro.errors import SpecificationViolation
from repro.runtime.events import DecideEvent, InvokeEvent
from repro.runtime.runner import Execution
from repro.spec.properties import (
    assert_execution_safe,
    check_k_agreement,
    check_safety,
    check_validity,
    instance_inputs,
    instance_outputs,
)


class FakeExecution(Execution):
    """Execution stub carrying only events (checkers read nothing else)."""

    def __init__(self, events):
        self.events = events


def make(events):
    return FakeExecution(events)


class TestAccounting:
    def test_instance_inputs_grouping(self):
        events = [
            InvokeEvent(0, 1, "a"),
            InvokeEvent(1, 1, "b"),
            InvokeEvent(0, 2, "c"),
        ]
        assert instance_inputs(events) == {1: {"a", "b"}, 2: {"c"}}

    def test_instance_outputs_grouping(self):
        events = [
            DecideEvent(0, 1, "a"),
            DecideEvent(1, 1, "a"),
            DecideEvent(0, 2, "z"),
        ]
        assert instance_outputs(events) == {1: {"a"}, 2: {"z"}}


class TestValidity:
    def test_clean(self):
        execution = make([InvokeEvent(0, 1, "a"), DecideEvent(0, 1, "a")])
        assert check_validity(execution) == []

    def test_stray_output_flagged(self):
        execution = make([InvokeEvent(0, 1, "a"), DecideEvent(0, 1, "GHOST")])
        violations = check_validity(execution)
        assert len(violations) == 1
        assert violations[0].property_name == "Validity"
        assert "GHOST" in violations[0].detail

    def test_per_instance_isolation(self):
        """A value proposed in instance 1 is not a valid output of 2."""
        execution = make(
            [
                InvokeEvent(0, 1, "a"),
                DecideEvent(0, 1, "a"),
                InvokeEvent(0, 2, "b"),
                DecideEvent(0, 2, "a"),  # "a" was never proposed in inst 2
            ]
        )
        violations = check_validity(execution)
        assert [v.instance for v in violations] == [2]


class TestKAgreement:
    def test_within_k(self):
        execution = make(
            [DecideEvent(0, 1, "a"), DecideEvent(1, 1, "b")]
        )
        assert check_k_agreement(execution, k=2) == []

    def test_exceeding_k_flagged(self):
        execution = make(
            [DecideEvent(0, 1, "a"), DecideEvent(1, 1, "b"),
             DecideEvent(2, 1, "c")]
        )
        violations = check_k_agreement(execution, k=2)
        assert len(violations) == 1
        assert violations[0].instance == 1
        assert "exceed k=2" in violations[0].detail

    def test_instances_checked_independently(self):
        execution = make(
            [
                DecideEvent(0, 1, "a"),
                DecideEvent(1, 1, "b"),  # instance 1: 2 outputs
                DecideEvent(0, 2, "x"),  # instance 2: 1 output
            ]
        )
        assert check_k_agreement(execution, k=1) != []
        assert all(v.instance == 1 for v in check_k_agreement(execution, k=1))

    def test_duplicate_outputs_counted_once(self):
        execution = make(
            [DecideEvent(0, 1, "a"), DecideEvent(1, 1, "a"),
             DecideEvent(2, 1, "a")]
        )
        assert check_k_agreement(execution, k=1) == []


class TestCombined:
    def test_check_safety_combines(self):
        execution = make(
            [
                InvokeEvent(0, 1, "a"),
                DecideEvent(0, 1, "GHOST"),
                DecideEvent(1, 1, "a"),
            ]
        )
        violations = check_safety(execution, k=1)
        names = {v.property_name for v in violations}
        assert names == {"Validity", "k-Agreement"}

    def test_assert_raises_with_all_details(self):
        execution = make([InvokeEvent(0, 1, "a"), DecideEvent(0, 1, "x")])
        with pytest.raises(SpecificationViolation) as info:
            assert_execution_safe(execution, k=1)
        assert "Validity" in str(info.value)

    def test_assert_passes_silently(self):
        execution = make([InvokeEvent(0, 1, "a"), DecideEvent(0, 1, "a")])
        assert_execution_safe(execution, k=1)

    def test_violation_str(self):
        execution = make([DecideEvent(0, 3, "a"), DecideEvent(1, 3, "b")])
        violation = check_k_agreement(execution, k=1)[0]
        assert "instance 3" in str(violation)
