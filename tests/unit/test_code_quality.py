"""Repository quality gates: documentation and API-surface consistency.

These tests keep the library honest as it grows: every public module,
class, and function must carry a docstring, and every name exported via
``__all__`` must actually exist.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULES = all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} is missing a module docstring"
    )


def _inherits_doc(cls, method_name):
    """An override of a documented base method counts as documented."""
    for base in cls.__mro__[1:]:
        inherited = getattr(base, method_name, None)
        if inherited is not None and (inherited.__doc__ or "").strip():
            return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if (method.__doc__ and method.__doc__.strip()) or \
                        _inherits_doc(member, method_name):
                    continue
                undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {sorted(undocumented)}"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module_name}.__all__ lists missing names {missing}"


def test_no_print_statements_in_library_code():
    """The library communicates through return values and exceptions; only
    the CLI may print.  (AST-based, so docstring examples don't count.)"""
    import ast

    offenders = []
    for path in SRC_ROOT.rglob("*.py"):
        if path.name in ("cli.py", "__main__.py"):
            continue
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                offenders.append(
                    f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
                )
    assert not offenders, f"print() in library code: {offenders}"


def test_public_api_importable_from_top_level():
    for name in repro.__all__:
        assert hasattr(repro, name)
