"""Unit tests for the replicated state machine over repeated consensus."""

import pytest

from repro import RandomScheduler
from repro.agreement.universal import ReplicatedStateMachine


def counter_apply(state, command):
    kind, amount = command
    return state + amount if kind == "add" else state


def make_rsm(n=3):
    return ReplicatedStateMachine(n=n, apply_fn=counter_apply, initial_state=0)


class TestReplicatedStateMachine:
    def test_log_drawn_from_proposals(self):
        rsm = make_rsm()
        commands = [[("add", 1)], [("add", 10)], [("add", 100)]]
        result = rsm.run(commands)
        assert len(result.log) == 1
        assert result.log[0] in {("add", 1), ("add", 10), ("add", 100)}

    def test_final_state_is_fold_of_log(self):
        rsm = make_rsm()
        commands = [
            [("add", 1), ("add", 2)],
            [("add", 10), ("add", 20)],
            [("add", 100), ("add", 200)],
        ]
        result = rsm.run(commands, scheduler=RandomScheduler(seed=1))
        expected = 0
        for command in result.log:
            expected = counter_apply(expected, command)
        assert result.final_state == expected

    def test_rejected_commands_reported(self):
        rsm = make_rsm()
        commands = [[("add", 1)], [("add", 10)], [("add", 100)]]
        result = rsm.run(commands)
        winners = set(result.log)
        for pid, command in result.rejected:
            assert command not in winners or True  # rejected lost their slot
        # exactly n-1 of the slot-1 proposals lost
        assert len([r for r in result.rejected]) == 2

    def test_consensus_per_slot_under_many_seeds(self):
        for seed in range(5):
            rsm = make_rsm()
            commands = [
                [("add", 1), ("add", 2)],
                [("add", 10), ("add", 20)],
                [("add", 100), ("add", 200)],
            ]
            result = rsm.run(commands, scheduler=RandomScheduler(seed=seed))
            assert result.slots == 2

    def test_workload_shape_validated(self):
        rsm = make_rsm(n=2)
        with pytest.raises(ValueError):
            rsm.run([[("add", 1)]])  # only one replica's commands

    def test_uses_exactly_n_registers(self):
        """The repeated-consensus substrate is the paper's tight case."""
        rsm = make_rsm(n=4)
        system = rsm.system([[("add", 1)]] * 4)
        assert system.layout.register_count() == 5  # n+2m-k = n+1 components
        # (the min(n+2m-k, n) = n accounting needs the SWMR substrate;
        # the primitive-snapshot system provisions n+1 components)
