"""The register-access sanitizer: purity audits and trace diagnostics.

SAN101/SAN102 are tested by wrapping deliberately impure ``System``
subclasses — the sanitizer must catch exactly the corruption it was built
for.  SAN103/SAN104 are tested both on synthetic event streams (precise
happens-before shapes) and on a real double-collect run (the substrate
whose frames are genuinely not atomic).
"""

from dataclasses import replace

import pytest

from repro.agreement.oneshot import OneShotSetAgreement
from repro.analysis.sanitizer import (
    MAX_FINDINGS_PER_RULE,
    RegisterSanitizer,
    SanitizedSystem,
    SanitizerCollector,
    sanitize_execution,
)
from repro.memory.ops import ReadOp, UpdateOp, WriteOp
from repro.objects import implemented_snapshot_layout
from repro.runtime.events import MemoryEvent
from repro.runtime.runner import run
from repro.runtime.system import StepResult, System
from repro.sched.round_robin import RoundRobinScheduler


def oneshot_system(substrate=None):
    protocol = OneShotSetAgreement(n=3, m=1, k=1)
    layout = (
        implemented_snapshot_layout(protocol, substrate) if substrate else None
    )
    return System(protocol, workloads=[[1], [2], [3]], layout=layout)


# --------------------------------------------------------------------- #
# Clean systems stay clean
# --------------------------------------------------------------------- #

def test_pure_system_produces_no_errors():
    report = sanitize_execution(oneshot_system())
    assert report.ok
    assert report.count("warning") == 0
    assert all(f.rule in ("SAN103", "SAN104") for f in report.findings)


def test_sanitized_system_preserves_behavior():
    plain = run(oneshot_system(), RoundRobinScheduler(), max_steps=5_000)
    sanitized = run(
        SanitizedSystem(oneshot_system()), RoundRobinScheduler(),
        max_steps=5_000,
    )
    assert sanitized.schedule == plain.schedule
    assert sanitized.events == plain.events
    assert sanitized.outputs() == plain.outputs()


# --------------------------------------------------------------------- #
# SAN101: mutation-after-freeze
# --------------------------------------------------------------------- #

class MutatingSystem(System):
    """Impure on purpose: writes through the frozen input configuration."""

    def step(self, config, pid):
        result = super().step(config, pid)
        # Every step changes the stepping process's state, so writing the
        # successor's procs back through the *input* is a real mutation.
        object.__setattr__(config, "procs", result.config.procs)
        return result


def test_mutation_after_freeze_is_caught():
    base = oneshot_system()
    evil = MutatingSystem(base.automaton, workloads=[[1], [2], [3]])
    collector = SanitizerCollector()
    sanitized = SanitizedSystem(evil, collector, check_replay=False)
    sanitized.step(sanitized.initial_configuration(), 0)
    assert [f.rule for f in collector.findings] == ["SAN101"]
    assert collector.findings[0].severity == "error"
    assert not collector.report().ok


# --------------------------------------------------------------------- #
# SAN102: nondeterministic step
# --------------------------------------------------------------------- #

class FlickeringSystem(System):
    """Impure on purpose: each call returns a differently-labeled event."""

    def step(self, config, pid):
        self._calls = getattr(self, "_calls", 0) + 1
        result = super().step(config, pid)
        return StepResult(
            result.config, replace(result.event, value=self._calls)
        )


def test_nondeterministic_step_is_caught():
    base = oneshot_system()
    evil = FlickeringSystem(base.automaton, workloads=[[1], [2], [3]])
    collector = SanitizerCollector()
    sanitized = SanitizedSystem(evil, collector, check_replay=True)
    # The first step is p0's invoke, whose event carries a value field.
    sanitized.step(sanitized.initial_configuration(), 0)
    assert any(f.rule == "SAN102" for f in collector.findings)


def test_replay_check_can_be_disabled():
    base = oneshot_system()
    evil = FlickeringSystem(base.automaton, workloads=[[1], [2], [3]])
    collector = SanitizerCollector()
    sanitized = SanitizedSystem(evil, collector, check_replay=False)
    sanitized.step(sanitized.initial_configuration(), 0)
    assert collector.findings == []


# --------------------------------------------------------------------- #
# SAN103 / SAN104 on synthetic event streams
# --------------------------------------------------------------------- #

def make_monitor():
    system = oneshot_system()
    collector = SanitizerCollector()
    return RegisterSanitizer(system, collector), collector, system


def test_covering_write_is_reported():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    monitor(config, MemoryEvent(0, 1, UpdateOp("A", 0, "x"), None))
    monitor(config, MemoryEvent(1, 1, UpdateOp("A", 0, "y"), None))
    assert [f.rule for f in collector.findings] == ["SAN103"]
    assert collector.findings[0].severity == "note"


def test_read_between_writes_suppresses_covering():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    monitor(config, MemoryEvent(0, 1, WriteOp("R", 0, "x"), None))
    monitor(config, MemoryEvent(2, 1, ReadOp("R", 0), "x"))
    monitor(config, MemoryEvent(1, 1, WriteOp("R", 0, "y"), None))
    assert collector.findings == []


def test_own_overwrite_is_not_covering():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    monitor(config, MemoryEvent(0, 1, WriteOp("R", 0, "x"), None))
    monitor(config, MemoryEvent(0, 1, WriteOp("R", 0, "y"), None))
    assert collector.findings == []


def test_torn_frame_read_is_reported():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    read = ReadOp("R", 0)
    monitor(config, MemoryEvent(0, 1, read, "old", in_frame=True))
    monitor(config, MemoryEvent(0, 1, read, "new", in_frame=True))
    assert [f.rule for f in collector.findings] == ["SAN104"]


def test_consistent_frame_reads_are_silent():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    read = ReadOp("R", 0)
    monitor(config, MemoryEvent(0, 1, read, "same", in_frame=True))
    monitor(config, MemoryEvent(0, 1, read, "same", in_frame=True))
    assert collector.findings == []


def test_frame_boundary_resets_the_read_window():
    monitor, collector, system = make_monitor()
    config = system.initial_configuration()
    read = ReadOp("R", 0)
    monitor(config, MemoryEvent(0, 1, read, "old", in_frame=True))
    # Leaving the frame ends the window: the next frame may see new values.
    monitor(config, MemoryEvent(0, 1, UpdateOp("A", 0, "v"), None))
    monitor(config, MemoryEvent(0, 1, read, "new", in_frame=True))
    assert collector.findings == []


def test_double_collect_run_reports_torn_reads():
    report = sanitize_execution(
        oneshot_system("double-collect"), max_steps=3_000
    )
    assert any(f.rule == "SAN104" for f in report.findings)
    assert report.ok  # torn reads in a collect substrate are notes, not bugs


# --------------------------------------------------------------------- #
# Collector hygiene
# --------------------------------------------------------------------- #

def test_collector_deduplicates_identical_findings():
    collector = SanitizerCollector()
    collector.record("SAN103", "same message")
    collector.record("SAN103", "same message")
    assert len(collector.findings) == 1


def test_collector_caps_per_rule_volume():
    collector = SanitizerCollector()
    for i in range(MAX_FINDINGS_PER_RULE + 10):
        collector.record("SAN103", f"distinct message {i}")
    assert len(collector.findings) == MAX_FINDINGS_PER_RULE
    report = collector.report()
    assert any("suppressed" in f.message for f in report.findings)


def test_collector_cap_is_per_rule_not_global():
    collector = SanitizerCollector()
    for i in range(MAX_FINDINGS_PER_RULE):
        collector.record("SAN103", f"covering {i}")
    collector.record("SAN104", "a torn read")
    assert any(f.rule == "SAN104" for f in collector.findings)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
