"""Unit tests for the span-scoped sampling profiler (telemetry.profile).

The profiler is statistical — tests assert structure (folded format,
span attribution, reader behaviour), not exact sample counts, and keep
the busy loops short so the suite stays fast.
"""

import time

from repro import telemetry
from repro.telemetry.profile import (
    NO_SPAN,
    SpanProfiler,
    frame_label,
    read_folded,
    span_totals,
    top_frames,
)


def spin(seconds):
    """Burn CPU long enough for the sampler to land a few hits."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestFrameLabel:
    def test_repro_files_become_dotted_modules(self):
        label = frame_label("/x/src/repro/explore/frontier.py", "_expand")
        assert label == "repro.explore.frontier:_expand"

    def test_foreign_files_keep_their_stem(self):
        assert frame_label("/usr/lib/python3/threading.py", "wait") == (
            "threading:wait"
        )


class TestSampler:
    def setup_method(self):
        telemetry.reset()

    def teardown_method(self):
        telemetry.reset()

    def test_samples_attribute_to_open_span(self, tmp_path):
        session = telemetry.start(
            command="x", mode="jsonl", sinks=[], attrs={}
        )
        profiler = SpanProfiler(interval=0.001)
        profiler.start()
        with telemetry.span("hot.section"):
            spin(0.15)
        profiler.stop()
        session.close(exit_code=0, verdict="ok")
        lines = profiler.folded_lines()
        assert lines, "sampler collected nothing in 150ms at 1ms interval"
        spans = {line.split(";", 1)[0] for line in lines}
        assert "hot.section" in spans

    def test_samples_without_session_go_to_no_span(self):
        profiler = SpanProfiler(interval=0.001)
        profiler.start()
        spin(0.1)
        profiler.stop()
        assert profiler.folded_lines()
        assert all(
            line.startswith(NO_SPAN) for line in profiler.folded_lines()
        )

    def test_write_and_read_roundtrip(self, tmp_path):
        profiler = SpanProfiler(interval=0.001)
        profiler.start()
        spin(0.1)
        profiler.stop()
        target = tmp_path / "profile.folded"
        written = profiler.write(target)
        entries = read_folded(target)
        assert written == sum(count for _, count in entries)
        assert all(count > 0 for _, count in entries)

    def test_stop_is_idempotent_and_start_stop_without_samples_ok(
        self, tmp_path
    ):
        profiler = SpanProfiler(interval=5.0)  # will never fire
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert profiler.write(tmp_path / "p.folded") == 0


class TestReaders:
    def test_read_folded_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "profile.folded"
        path.write_text(
            "a;b;c 3\n"
            "no-trailing-count\n"
            "d;e not-a-number\n"
            "\n"
            "a;b 2\n"
        )
        entries = read_folded(path)
        assert entries == [(("a", "b", "c"), 3), (("a", "b"), 2)]

    def test_span_totals_are_cumulative_and_sorted(self):
        entries = [
            (("alpha", "f", "g"), 3),
            (("alpha", "f"), 2),
            (("beta", "h"), 4),
        ]
        assert span_totals(entries) == [("alpha", 5), ("beta", 4)]

    def test_top_frames_assign_self_time_to_leaves(self):
        entries = [
            (("alpha", "f", "g"), 3),
            (("alpha", "f"), 1),
            (("beta", "h"), 2),
        ]
        rows = top_frames(entries, limit=2)
        assert rows[0] == ("alpha", "g", 3)
        assert rows[1] == ("beta", "h", 2)

    def test_read_folded_missing_file_is_empty(self, tmp_path):
        assert read_folded(tmp_path / "absent.folded") == []
