"""Unit tests for the telemetry subsystem.

Covers the metrics registry (instruments, snapshot/merge aggregation,
deterministic/volatile export split), the session pipeline (event
sequencing, spans, no-op safety when inactive), the sinks (JSONL stream,
Chrome trace, live renderer in pipe mode), the stream schema validator
and golden normalization, the shared heartbeat, the Markdown report
renderer, and the ``repro report`` CLI command.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import telemetry
from repro.errors import ReproError
from repro.telemetry import heartbeat
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.report import load_events, render_report
from repro.telemetry.schema import (
    SCHEMA_VERSION,
    normalize_lines,
    normalized_stream,
    validate_lines,
    validate_stream,
)
from repro.telemetry.sinks import (
    EVENTS_FILE,
    TRACE_FILE,
    JsonlSink,
    LiveSink,
    dump_event,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """No session or heartbeat state leaks between tests."""
    telemetry.reset()
    heartbeat.reset()
    yield
    telemetry.reset()
    heartbeat.reset()


class ListSink:
    """A sink that records events in memory (test double)."""

    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


def _session(sinks=None, attrs=None):
    return telemetry.start(
        command="test", mode="jsonl", sinks=sinks or [],
        attrs={"schema": SCHEMA_VERSION, **(attrs or {})},
    )


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.value("counter", "c") == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7)
        assert registry.value("gauge", "g") == 7

    def test_histogram_buckets_observations(self):
        histogram = Histogram(name="h", bounds=(1, 10, 100))
        for value in (0.5, 1, 5, 50, 500):
            histogram.observe(value)
        # inclusive upper bounds; 500 overflows into the implicit bucket
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.mean() == pytest.approx(556.5 / 5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram(name="h", bounds=())
        with pytest.raises(ValueError, match="sorted"):
            Histogram(name="h", bounds=(10, 1))

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_metadata_skew_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError, match="skew"):
            registry.counter("c", volatile=True)
        with pytest.raises(ValueError, match="skew"):
            registry.gauge("g", volatile=True)
        with pytest.raises(ValueError, match="skew"):
            registry.histogram("h", bounds=(1, 2, 3))

    def test_value_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MetricsRegistry().value("histogram", "h")
        assert MetricsRegistry().value("counter", "missing") is None


class TestSnapshotMerge:
    def _worker_registry(self):
        registry = MetricsRegistry()
        registry.counter("configs").inc(10)
        registry.gauge("frontier").set(3)
        registry.histogram("sizes", bounds=COUNT_BUCKETS).observe(8)
        return registry

    def test_merge_sums_counters_and_histograms(self):
        coordinator = MetricsRegistry()
        for _ in range(3):
            coordinator.merge(self._worker_registry().snapshot())
        assert coordinator.value("counter", "configs") == 30
        histogram = coordinator.histogram("sizes", bounds=COUNT_BUCKETS)
        assert histogram.count == 3 and histogram.total == 24

    def test_merge_gauges_last_write_wins(self):
        coordinator = MetricsRegistry()
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("g").set(1)
        second.gauge("g").set(2)
        coordinator.merge(first.snapshot())
        coordinator.merge(second.snapshot())
        assert coordinator.value("gauge", "g") == 2

    def test_merge_order_invariant_for_sums(self):
        a, b = self._worker_registry(), MetricsRegistry()
        b.counter("configs").inc(7)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge(a.snapshot())
        forward.merge(b.snapshot())
        backward.merge(b.snapshot())
        backward.merge(a.snapshot())
        assert (forward.value("counter", "configs")
                == backward.value("counter", "configs") == 17)

    def test_snapshot_is_picklable_and_empty_detects(self):
        import pickle

        snapshot = self._worker_registry().snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert not snapshot.empty
        assert MetricsRegistry().snapshot().empty

    def test_export_splits_deterministic_from_volatile(self):
        registry = MetricsRegistry()
        registry.counter("det").inc(2)
        registry.counter("vol", volatile=True).inc(9)
        registry.histogram("lat", volatile=True).observe(0.2)
        deterministic, volatile = registry.export()
        assert deterministic["counters"] == {"det": 2}
        assert volatile["counters"] == {"vol": 9}
        assert "lat" in volatile["histograms"]
        assert deterministic["histograms"] == {}


class TestSession:
    def test_helpers_are_noops_without_session(self):
        assert telemetry.active() is None
        telemetry.counter("c")
        telemetry.gauge("g", 1)
        telemetry.observe("h", 0.1)
        telemetry.mark("m")
        telemetry.merge(None)
        with telemetry.span("s") as span:
            span.set(x=1)  # the null span swallows everything

    def test_start_installs_and_close_uninstalls(self):
        sink = ListSink()
        session = _session([sink])
        assert telemetry.active() is session
        session.close(exit_code=0, verdict="ok")
        assert telemetry.active() is None
        assert sink.closed

    def test_double_start_raises(self):
        _session()
        with pytest.raises(RuntimeError, match="already active"):
            _session()

    def test_off_mode_rejected(self):
        with pytest.raises(ValueError, match="off"):
            telemetry.start(command="x", mode="off", sinks=[])

    def test_event_sequence_and_shape(self):
        sink = ListSink()
        session = _session([sink])
        telemetry.counter("units", 3)
        with telemetry.span("work", step=1):
            pass
        telemetry.mark("note", why="because")
        session.close(exit_code=0, verdict="ok")
        types = [event["type"] for event in sink.events]
        assert types == ["run_start", "span", "mark", "metrics", "run_end"]
        assert [event["seq"] for event in sink.events] == list(range(5))
        # v2: spans carry deterministic trace identity next to user attrs.
        assert sink.events[1]["attrs"] == {
            "step": 1, "span": "main:0", "lane": "main",
        }
        assert "dur" in sink.events[1]["vol"]
        assert sink.events[0]["attrs"]["trace"] == session.trace_id
        assert sink.events[3]["attrs"]["counters"] == {"units": 3}
        assert sink.events[-1]["attrs"] == {"exit_code": 0, "verdict": "ok"}

    def test_close_is_idempotent(self):
        sink = ListSink()
        session = _session([sink])
        session.close(exit_code=0, verdict="ok")
        session.close(exit_code=1, verdict="refuted")
        assert [e["type"] for e in sink.events].count("run_end") == 1

    def test_span_records_exception_type(self):
        sink = ListSink()
        session = _session([sink])
        with pytest.raises(KeyError):
            with telemetry.span("doomed"):
                raise KeyError("x")
        session.close()
        span = [e for e in sink.events if e["type"] == "span"][0]
        assert span["attrs"]["error"] == "KeyError"

    def test_merge_folds_worker_snapshot(self):
        session = _session()
        worker = MetricsRegistry()
        worker.counter("configs").inc(5)
        telemetry.merge(worker.snapshot())
        telemetry.merge(None)  # tolerated
        telemetry.merge(MetricsRegistry().snapshot())  # empty: tolerated
        assert session.registry.value("counter", "configs") == 5
        session.close()

    def test_reset_drops_without_closing(self):
        sink = ListSink()
        _session([sink])
        telemetry.reset()
        assert telemetry.active() is None
        assert not sink.closed  # reset is the fork path, not a close


class TestSinks:
    def test_dump_event_is_canonical(self):
        line = dump_event({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_jsonl_sink_writes_stream_and_trace(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "run"))
        session = _session([sink])
        with telemetry.span("explore.batch", batch=0):
            pass
        session.close(exit_code=0, verdict="ok")
        lines = (tmp_path / "run" / EVENTS_FILE).read_text().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[0])["type"] == "run_start"
        trace = json.loads((tmp_path / "run" / TRACE_FILE).read_text())
        # v2 traces also carry lane-name metadata and flow arrows; the
        # span inventory is the complete ("X") events.
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [entry["name"] for entry in complete] == ["explore.batch"]
        assert trace["otherData"]["trace"] == session.trace_id

    def test_live_sink_pipe_mode_prints_final_line(self):
        stream = io.StringIO()  # not a TTY: plain rate-limited lines
        sink = LiveSink(stream)
        session = _session([sink])
        sink.attach(session)
        telemetry.gauge("progress.total", 10)
        telemetry.gauge("progress.done", 4)
        session.close(exit_code=0, verdict="ok")
        output = stream.getvalue()
        assert "\r" not in output
        assert "done: ok (exit 0)" in output


class TestSchema:
    def _stream(self, tmp_path, name="run"):
        directory = tmp_path / name
        sink = JsonlSink(str(directory))
        session = _session([sink])
        telemetry.counter("explore.batches")
        with telemetry.span("explore.batch", batch=0):
            pass
        session.close(exit_code=0, verdict="ok")
        return directory

    def test_valid_stream_has_no_problems(self, tmp_path):
        directory = self._stream(tmp_path)
        assert validate_stream(directory) == []
        assert validate_stream(directory / EVENTS_FILE) == []

    def test_missing_stream_reports(self, tmp_path):
        problems = validate_stream(tmp_path / "nowhere")
        assert problems and "no event stream" in problems[0]

    def test_empty_stream_reports(self):
        assert validate_lines([]) == ["stream is empty"]

    def test_tampering_is_detected(self, tmp_path):
        directory = self._stream(tmp_path)
        lines = (directory / EVENTS_FILE).read_text().splitlines()
        # wrong keys
        assert any(
            "keys" in p for p in validate_lines(['{"seq": 0}'])
        )
        # non-contiguous seq
        broken = [lines[0], lines[-1].replace('"seq":3', '"seq":9')]
        assert any("seq" in p for p in validate_lines(broken))
        # truncated run (no run_end)
        assert any(
            "run_end" in p for p in validate_lines(lines[:-1])
        )
        # unknown type (lines: run_start, span, metrics, run_end)
        bad_type = lines[2].replace('"type":"metrics"', '"type":"mystery"')
        assert any(
            "unknown event type" in p
            for p in validate_lines(lines[:2] + [bad_type] + lines[3:])
        )
        # version skew
        skewed = lines[0].replace(
            f'"schema":{SCHEMA_VERSION}', '"schema":999'
        )
        assert any(
            "schema" in p for p in validate_lines([skewed] + lines[1:])
        )

    def test_normalization_blanks_volatile_only(self, tmp_path):
        directory = self._stream(tmp_path)
        normalized = normalized_stream(directory)
        for line in normalized.strip().splitlines():
            event = json.loads(line)
            assert event["vol"] == {}
        assert '"explore.batch"' in normalized

    def test_two_sessions_normalize_identically(self, tmp_path):
        first = self._stream(tmp_path, "first")
        telemetry.reset()
        second = self._stream(tmp_path, "second")
        assert normalized_stream(first) == normalized_stream(second)
        raw_first = (first / EVENTS_FILE).read_text()
        raw_second = (second / EVENTS_FILE).read_text()
        # the raw streams differ (timings), the normalized ones do not
        assert normalize_lines(raw_first.splitlines()) == normalize_lines(
            raw_second.splitlines()
        )


class TestHeartbeat:
    def test_publish_returns_rss_and_sets_gauges(self):
        session = _session()
        sample = heartbeat.publish(elapsed_s=1.5)
        assert sample >= 0.0
        assert session.registry.value("gauge", "heartbeat.rss_mb") == sample
        assert session.registry.value("gauge", "heartbeat.elapsed_s") == 1.5
        session.close()

    def test_publish_without_session_is_safe(self):
        assert heartbeat.publish() >= 0.0

    def test_rss_sample_is_cached(self):
        heartbeat.reset()
        first = heartbeat.rss_mb(max_age=60.0)
        second = heartbeat.rss_mb(max_age=60.0)
        assert first == second  # one /proc read served both


class TestReport:
    def _run_dir(self, tmp_path):
        directory = tmp_path / "run"
        sink = JsonlSink(str(directory))
        session = _session([sink], attrs={"n": 2, "k": 1, "seed": 7})
        telemetry.gauge("footprint.registers_provisioned", 3)
        telemetry.gauge("footprint.registers_written", 3)
        telemetry.counter("footprint.memory_steps", 311)
        telemetry.counter("footprint.write_steps", 138)
        telemetry.counter("durable.appends", 13)
        with telemetry.span("explore.batch", batch=0):
            pass
        telemetry.observe("explore.batch_size", 16, bounds=COUNT_BUCKETS)
        session.close(exit_code=0, verdict="ok")
        return directory

    def test_report_renders_all_sections(self, tmp_path):
        text = render_report(self._run_dir(tmp_path))
        assert "# Run report" in text
        assert "**Verdict:** ok (exit code 0" in text
        assert "| `n` | 2 |" in text
        assert "registers written | 3" in text
        assert "memory steps | 311" in text
        assert "`explore.batch`" in text
        assert "`explore.batch_size`" in text
        assert "journal appends | 13" in text

    def test_load_events_errors_on_missing_and_empty(self, tmp_path):
        with pytest.raises(ReproError, match="no telemetry stream"):
            load_events(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        (empty / EVENTS_FILE).write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_events(empty)
        (empty / EVENTS_FILE).write_text("not json\n")
        with pytest.raises(ReproError, match="unparseable event"):
            load_events(empty)


class TestReportCommand:
    def _run_dir(self, tmp_path):
        from repro.cli import main

        directory = tmp_path / "tele"
        code = main([
            "explore", "--protocol", "oneshot", "--n", "2", "--k", "1",
            "--max-configs", "100", "--telemetry", "jsonl",
            "--telemetry-dir", str(directory),
        ])
        assert code == 0
        return directory

    def test_report_command_renders(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._run_dir(tmp_path)
        capsys.readouterr()
        assert main(["report", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "repro explore" in out

    def test_report_check_accepts_valid_stream(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._run_dir(tmp_path)
        capsys.readouterr()
        assert main(["report", str(directory), "--check"]) == 0

    def test_report_check_rejects_truncated_stream(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._run_dir(tmp_path)
        events = directory / EVENTS_FILE
        lines = events.read_text().splitlines()
        events.write_text("\n".join(lines[:-1]) + "\n")
        capsys.readouterr()
        assert main(["report", str(directory), "--check"]) == 1
        assert "schema:" in capsys.readouterr().err

    def test_run_stream_carries_the_footprint(self, tmp_path, capsys):
        from repro.cli import main

        directory = tmp_path / "run-tele"
        code = main([
            "run", "--protocol", "oneshot", "--n", "3", "--k", "2",
            "--seed", "7", "--telemetry", "jsonl",
            "--telemetry-dir", str(directory),
        ])
        assert code == 0
        assert validate_stream(directory) == []
        capsys.readouterr()
        assert main(["report", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "## Register footprint" in out
        assert "`runtime.run`" in out

    def test_report_missing_dir_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nothing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_empty_stream_exits_one_with_diagnostic(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        directory = tmp_path / "empty"
        directory.mkdir()
        (directory / EVENTS_FILE).write_text("")
        assert main(["report", str(directory)]) == 1
        err = capsys.readouterr().err
        assert "report:" in err and "empty" in err

    def test_report_midwrite_truncation_exits_one_not_traceback(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        directory = self._run_dir(tmp_path)
        events = directory / EVENTS_FILE
        # a kill mid-write leaves a half JSON line at the tail
        events.write_text(events.read_text()[:-30])
        capsys.readouterr()
        assert main(["report", str(directory)]) == 1
        assert "unparseable event" in capsys.readouterr().err

    def test_report_check_names_first_bad_seq(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._run_dir(tmp_path)
        events = directory / EVENTS_FILE
        lines = events.read_text().splitlines()
        lines[2] = "garbage"
        events.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["report", str(directory), "--check"]) == 1
        assert "first bad event at seq 2" in capsys.readouterr().err


class TestBenchReportCommand:
    def _aggregate(self, tmp_path, payload):
        path = tmp_path / "BENCH_telemetry.json"
        path.write_text(json.dumps(payload))
        return path

    def test_bench_trend_table_renders(self, tmp_path, capsys):
        from repro.cli import main

        self._aggregate(tmp_path, {"schema": 2, "records": {
            "bench_explore": {
                "name": "bench_explore", "wall_s": 1.5, "peak_rss_mb": 64.0,
                "commit": "abc1234", "schema": 2,
                "host": {"cpus": 4, "platform": "linux", "python": "3.11"},
            },
        }})
        assert main(["report", "--bench", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark trend report" in out
        assert "`bench_explore`" in out
        assert "abc1234" in out
        assert "linux/4cpu" in out

    def test_bench_missing_aggregate_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--bench", str(tmp_path)]) == 2
        assert "no benchmark aggregate" in capsys.readouterr().err

    def test_bench_unreadable_aggregate_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "BENCH_telemetry.json").write_text("{trunca")
        assert main(["report", "--bench", str(tmp_path)]) == 1
        assert "report:" in capsys.readouterr().err

    def test_bench_empty_records_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        self._aggregate(tmp_path, {"schema": 2, "records": {}})
        assert main(["report", "--bench", str(tmp_path)]) == 1
        assert "no benchmark records" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_writes_folded_file_and_keeps_stream_golden(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.telemetry.schema import normalized_stream

        plain = tmp_path / "plain"
        profiled = tmp_path / "profiled"
        argv = ["explore", "--protocol", "oneshot", "--n", "2", "--k", "1",
                "--max-configs", "200", "--telemetry", "jsonl"]
        assert main(argv + ["--telemetry-dir", str(plain)]) == 0
        assert main(
            argv + ["--telemetry-dir", str(profiled), "--profile"]
        ) == 0
        assert (profiled / "profile.folded").exists()
        assert not (plain / "profile.folded").exists()
        # --profile must not perturb the deterministic stream (and with
        # it the trace id): identical runs, identical normalization
        assert normalized_stream(plain) == normalized_stream(profiled)
        assert "profile:" in capsys.readouterr().err

    def test_profile_without_telemetry_still_writes(self, tmp_path, capsys):
        from repro.cli import main

        directory = tmp_path / "dir"
        assert main([
            "explore", "--protocol", "oneshot", "--n", "2", "--k", "1",
            "--max-configs", "200", "--telemetry-dir", str(directory),
            "--profile",
        ]) == 0
        assert (directory / "profile.folded").exists()
