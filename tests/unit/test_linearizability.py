"""Unit tests for the linearizability checker itself.

The checker is a test oracle, so it gets its own adversarial tests: known
linearizable histories must pass, and known non-linearizable ones must be
rejected (a checker that accepts everything would green-light a broken
snapshot implementation).
"""

import pytest

from repro import System, RoundRobinScheduler, run
from repro._types import BOT
from repro.errors import ConfigurationError
from repro.memory.ops import ScanOp, UpdateOp
from repro.spec.linearizability import (
    OpRecord,
    SnapshotScript,
    check_linearizable,
    extract_history,
)


def rec(pid, op, response, start, end):
    return OpRecord(pid=pid, op=op, response=response, start=start, end=end)


class TestChecker:
    def test_empty_history(self):
        assert check_linearizable([], components=2) == ()

    def test_sequential_history_accepted(self):
        history = [
            rec(0, UpdateOp("A", 0, "x"), None, 0, 0),
            rec(1, ScanOp("A"), ("x", BOT), 1, 1),
        ]
        assert check_linearizable(history, components=2) is not None

    def test_stale_scan_rejected(self):
        """A scan strictly after an update must observe it."""
        history = [
            rec(0, UpdateOp("A", 0, "x"), None, 0, 0),
            rec(1, ScanOp("A"), (BOT, BOT), 1, 1),
        ]
        assert check_linearizable(history, components=2) is None

    def test_concurrent_scan_may_or_may_not_observe(self):
        update = rec(0, UpdateOp("A", 0, "x"), None, 0, 5)
        missed = rec(1, ScanOp("A"), (BOT, BOT), 1, 2)
        saw = rec(1, ScanOp("A"), ("x", BOT), 1, 2)
        assert check_linearizable([update, missed], components=2) is not None
        assert check_linearizable([update, saw], components=2) is not None

    def test_new_old_inversion_rejected(self):
        """Two sequential scans cannot un-observe an update."""
        history = [
            rec(0, UpdateOp("A", 0, "x"), None, 0, 0),
            rec(1, ScanOp("A"), ("x", BOT), 1, 1),
            rec(1, ScanOp("A"), (BOT, BOT), 2, 2),
        ]
        assert check_linearizable(history, components=2) is None

    def test_real_time_order_respected(self):
        """An op cannot be linearized before one that ended before it began."""
        history = [
            rec(0, UpdateOp("A", 0, "x"), None, 0, 0),
            rec(1, UpdateOp("A", 0, "y"), None, 1, 1),
            rec(2, ScanOp("A"), ("x",), 2, 2),  # must see y, not x
        ]
        assert check_linearizable(history, components=1) is None

    def test_witness_is_a_permutation(self):
        history = [
            rec(0, UpdateOp("A", 0, "x"), None, 0, 3),
            rec(1, UpdateOp("A", 1, "y"), None, 1, 2),
            rec(0, ScanOp("A"), ("x", "y"), 4, 5),
        ]
        witness = check_linearizable(history, components=2)
        assert witness is not None
        assert sorted(id(r) for r in witness) == sorted(id(r) for r in history)


class TestHarness:
    def test_script_validation(self):
        with pytest.raises(ConfigurationError):
            SnapshotScript([[UpdateOp("B", 0, 1)]], components=2)

    def test_extract_history_on_primitive(self):
        scripts = [[UpdateOp("A", 0, "u")], [ScanOp("A")]]
        system = System(SnapshotScript(scripts, components=2),
                        workloads=[[0], [0]])
        execution = run(system, RoundRobinScheduler(), max_steps=100)
        history = extract_history(execution, scripts)
        assert len(history) == 2
        for record in history:
            assert record.start == record.end  # primitive ops are one step

    def test_broken_substrate_is_caught(self):
        """A single-collect 'snapshot' (no double collect) must produce a
        non-linearizable history under the right interleaving."""
        from repro._types import Params
        from repro.memory.layout import ImplementedBinding, MemoryLayout
        from repro.objects.doublecollect import DoubleCollectSnapshot, _ScanFrame

        class BrokenSnapshot(DoubleCollectSnapshot):
            """Returns after the FIRST collect: not atomic."""

            name = "broken-single-collect"

            def apply(self, ictx, state, response):
                if isinstance(state, _ScanFrame):
                    current = state.current + (response,)
                    if len(current) < self.components:
                        from dataclasses import replace
                        return replace(state, cursor=state.cursor + 1,
                                       current=current)
                    # pretend the first collect is already stable
                    from dataclasses import replace
                    return replace(state, cursor=self.components,
                                   current=current, previous=current)
                return super().apply(ictx, state, response)

        impl = BrokenSnapshot(Params(components=2, n=2))
        banks = impl.bank_specs(prefix="A")
        layout = MemoryLayout(
            tuple(banks),
            {"A": ImplementedBinding(impl, tuple(b.name for b in banks))},
        )
        scripts = [
            [ScanOp("A")],
            [UpdateOp("A", 0, "x"), UpdateOp("A", 1, "y")],
        ]
        system = System(SnapshotScript(scripts, components=2),
                        workloads=[[0], [0]], layout=layout)
        # p0 reads register 0 (sees BOT), p1 writes both, p0 reads register
        # 1 (sees y): the scan returns (BOT, y), which no atomic snapshot
        # can produce "after" x was written... precisely: scan response
        # (BOT, 'y') requires update(1,y) before it but update(0,x) after —
        # yet x was written before y by the same process. Not linearizable.
        from repro.sched import FixedSchedule

        execution = run(system, FixedSchedule([0, 0, 1, 1, 1, 0, 0, 1]),
                        max_steps=100)
        history = extract_history(execution, scripts)
        assert check_linearizable(history, components=2) is None
