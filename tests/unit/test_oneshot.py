"""Unit tests for the Figure 3 one-shot algorithm: per-rule behaviour.

These tests drive the automaton's scan-processing logic directly through
its (pure) transition function, pinning each line of the pseudocode, plus
whole-system checks of Lemma 3's invariant and the deciding rules.
"""

import pytest

from repro import OneShotSetAgreement, System, RoundRobinScheduler, run, run_solo
from repro._types import BOT
from repro.agreement.oneshot import (
    DECIDED,
    SCAN,
    UPDATE,
    OneShotState,
    first_duplicate_index,
)
from repro.errors import ConfigurationError
from repro.memory.ops import ScanOp, UpdateOp
from repro.runtime.automaton import Context, Decide


def make(n=4, m=1, k=2, components=None):
    return OneShotSetAgreement(n=n, m=m, k=k, components=components)


def ctx_for(protocol, pid=0):
    return Context(pid=pid, n=protocol.n, params=protocol.params)


class TestParameters:
    def test_nominal_components(self):
        assert make(4, 1, 2).components == 4  # n + 2m - k
        assert make(6, 2, 3).components == 7

    def test_component_override(self):
        assert make(4, 1, 2, components=2).components == 2

    @pytest.mark.parametrize("n,m,k", [(4, 0, 1), (4, 2, 1), (4, 1, 4), (1, 1, 1)])
    def test_invalid_parameters(self, n, m, k):
        with pytest.raises(ConfigurationError):
            make(n, m, k)


class TestFirstDuplicateIndex:
    def test_none_without_duplicates(self):
        assert first_duplicate_index((("a", 1), ("b", 2), BOT)) is None

    def test_bot_never_duplicates(self):
        assert first_duplicate_index((BOT, BOT, BOT)) is None

    def test_minimal_index(self):
        scan = (("x", 1), ("y", 2), ("x", 1), ("y", 2))
        assert first_duplicate_index(scan) == 0

    def test_duplicate_later(self):
        scan = (("x", 1), ("y", 2), ("y", 2))
        assert first_duplicate_index(scan) == 1


class TestStateMachine:
    def test_begin_starts_at_location_zero(self):
        protocol = make()
        (state,) = protocol.begin(ctx_for(protocol), None, "v", 1)
        assert state == OneShotState(pref="v", i=0, phase=UPDATE)

    def test_pending_update_carries_pair(self):
        protocol = make()
        state = OneShotState(pref="v", i=3, phase=UPDATE)
        op = protocol.pending(ctx_for(protocol, pid=2), 0, state)
        assert op == UpdateOp("A", 3, ("v", 2))

    def test_update_then_scan(self):
        protocol = make()
        state = OneShotState(pref="v", i=0, phase=UPDATE)
        state = protocol.apply(ctx_for(protocol), 0, state, None)
        assert state.phase == SCAN
        assert isinstance(protocol.pending(ctx_for(protocol), 0, state), ScanOp)

    def test_decide_rule_line9(self):
        """<= m distinct pairs, no ⊥ -> output the first duplicate's value."""
        protocol = make(n=5, m=1, k=2)  # r = 5
        state = OneShotState(pref="v", i=0, phase=SCAN)
        scan = (("w", 7),) * 5
        state = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert state.phase == DECIDED
        action = protocol.pending(ctx_for(protocol), 0, state)
        assert isinstance(action, Decide) and action.output == "w"

    def test_no_decide_with_bot_present(self):
        protocol = make(n=5, m=1, k=2)
        state = OneShotState(pref="v", i=0, phase=SCAN)
        scan = (("w", 7), ("w", 7), ("w", 7), ("w", 7), BOT)
        state = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert state.phase != DECIDED

    def test_no_decide_with_too_many_distinct(self):
        protocol = make(n=5, m=1, k=2)
        state = OneShotState(pref="v", i=0, phase=SCAN)
        scan = (("w", 7), ("x", 8), ("w", 7), ("w", 7), ("w", 7))
        state = protocol.apply(ctx_for(protocol), 0, state, scan)
        assert state.phase != DECIDED

    def test_adopt_rule_line11(self):
        """Foreign duplicated pair + own pair only at i -> adopt, stay."""
        protocol = make(n=5, m=1, k=2)
        ctx = ctx_for(protocol, pid=0)
        state = OneShotState(pref="v", i=2, phase=SCAN)
        scan = (("w", 7), ("w", 7), ("v", 0), ("x", 8), ("y", 9))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "w"
        assert new.i == 2  # location unchanged on adoption

    def test_adoption_requires_change_of_preference(self):
        """A duplicate carrying the scanner's own preference counts as
        'keep' -> the location advances (the Lemma 5 dichotomy)."""
        protocol = make(n=5, m=1, k=2)
        ctx = ctx_for(protocol, pid=0)
        state = OneShotState(pref="v", i=2, phase=SCAN)
        scan = (("v", 7), ("v", 7), ("v", 0), ("x", 8), ("y", 9))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "v"
        assert new.i == 3

    def test_advance_rule_line14_on_bot(self):
        protocol = make(n=5, m=1, k=2)
        ctx = ctx_for(protocol, pid=0)
        state = OneShotState(pref="v", i=1, phase=SCAN)
        scan = (("w", 7), ("v", 0), BOT, ("w", 7), ("x", 8))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "v"
        assert new.i == 2

    def test_advance_wraps_modulo_r(self):
        protocol = make(n=5, m=1, k=2)
        ctx = ctx_for(protocol, pid=0)
        state = OneShotState(pref="v", i=4, phase=SCAN)
        scan = (BOT,) * 5
        new = protocol.apply(ctx, 0, state, scan)
        assert new.i == 0

    def test_own_pair_elsewhere_blocks_adoption(self):
        """Seeing one's own pair outside position i forces advancement."""
        protocol = make(n=5, m=1, k=2)
        ctx = ctx_for(protocol, pid=0)
        state = OneShotState(pref="v", i=1, phase=SCAN)
        scan = (("v", 0), ("v", 0), ("w", 7), ("w", 7), ("x", 8))
        new = protocol.apply(ctx, 0, state, scan)
        assert new.pref == "v"
        assert new.i == 2


class TestLemma3Invariant:
    def test_all_pairs_with_same_id_have_same_value(self):
        """Lemma 3: the snapshot never holds two different values under the
        same identifier — checked on every configuration of a real run."""
        protocol = make(n=3, m=1, k=2)
        system = System(protocol, workloads=[["a"], ["b"], ["c"]])
        config = system.initial_configuration()
        from repro.sched import RandomScheduler

        scheduler = RandomScheduler(seed=11)
        scheduler.reset()
        for step in range(400):
            enabled = system.enabled_pids(config)
            if not enabled:
                break
            pid = scheduler.choose(config, system, enabled, step)
            config = system.step(config, pid).config
            per_id = {}
            for entry in config.memory[0]:
                if entry is not BOT:
                    value, pid_ = entry
                    per_id.setdefault(pid_, set()).add(value)
            assert all(len(vals) == 1 for vals in per_id.values())


class TestEndToEnd:
    def test_solo_decides_own_input(self):
        system = System(make(n=3, m=1, k=1), workloads=[["a"], ["b"], ["c"]])
        execution = run_solo(system, 2)
        assert execution.config.procs[2].outputs == ("c",)

    def test_all_processes_decide_round_robin(self):
        system = System(make(n=4, m=2, k=3), workloads=[[f"v{i}"] for i in range(4)])
        execution = run(system, RoundRobinScheduler(), max_steps=50_000)
        outputs = {p.outputs[0] for p in execution.config.procs}
        assert len(outputs) <= 3
