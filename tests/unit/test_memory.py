"""Unit tests for the memory model: ops, register/snapshot semantics, layouts."""

import pytest

from repro._types import BOT
from repro.errors import ConfigurationError, MemoryError_, ProtocolViolation
from repro.memory import register, snapshot
from repro.memory.layout import (
    BankSpec,
    MemoryLayout,
    PrimitiveBinding,
    RegisterCoord,
    merge_layouts,
    register_layout,
    snapshot_layout,
)
from repro.memory.ops import (
    ReadOp,
    ScanOp,
    UpdateOp,
    WriteOp,
    is_write_access,
    written_register,
)


class TestOps:
    def test_write_access_classification(self):
        assert is_write_access(WriteOp("A", 0, 1))
        assert is_write_access(UpdateOp("A", 0, 1))
        assert not is_write_access(ReadOp("A", 0))
        assert not is_write_access(ScanOp("A"))

    def test_written_register(self):
        assert written_register(WriteOp("A", 3, "x")) == ("A", 3)
        assert written_register(UpdateOp("S", 1, "y")) == ("S", 1)
        assert written_register(ReadOp("A", 0)) is None
        assert written_register(ScanOp("S")) is None

    def test_ops_hashable(self):
        assert len({ReadOp("A", 0), ReadOp("A", 0), ReadOp("A", 1)}) == 2

    def test_reprs(self):
        assert "A[0]" in repr(ReadOp("A", 0))
        assert ":=" in repr(WriteOp("A", 0, 5))
        assert ":=" in repr(UpdateOp("A", 0, 5))
        assert "scan" in repr(ScanOp("A"))


class TestRegisterSemantics:
    def test_read_write_roundtrip(self):
        bank = (BOT, BOT, BOT)
        bank = register.write(bank, 1, "x")
        assert register.read(bank, 1) == "x"
        assert register.read(bank, 0) is BOT

    def test_write_is_pure(self):
        bank = (BOT, BOT)
        new = register.write(bank, 0, 1)
        assert bank == (BOT, BOT)
        assert new == (1, BOT)

    @pytest.mark.parametrize("index", [-1, 2, 100])
    def test_out_of_range_read(self, index):
        with pytest.raises(MemoryError_):
            register.read((BOT, BOT), index)

    @pytest.mark.parametrize("index", [-1, 2])
    def test_out_of_range_write(self, index):
        with pytest.raises(MemoryError_):
            register.write((BOT, BOT), index, 1)

    def test_non_integer_index_rejected(self):
        with pytest.raises(MemoryError_):
            register.read((BOT,), "0")


class TestSnapshotSemantics:
    def test_update_then_scan(self):
        comps = (BOT,) * 3
        comps = snapshot.update(comps, 2, "z")
        assert snapshot.scan(comps) == (BOT, BOT, "z")


class TestBankSpec:
    def test_initial_bank(self):
        assert BankSpec("b", 3).initial_bank() == (BOT, BOT, BOT)
        assert BankSpec("b", 2, initial=0).initial_bank() == (0, 0)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BankSpec("b", 0)


class TestMemoryLayout:
    def test_snapshot_layout_roundtrip(self):
        layout = snapshot_layout("A", 4)
        memory = layout.initial_memory()
        memory, _ = layout.apply_primitive(memory, UpdateOp("A", 2, "v"))
        memory, scan_result = layout.apply_primitive(memory, ScanOp("A"))
        assert scan_result == (BOT, BOT, "v", BOT)

    def test_register_layout_roundtrip(self):
        layout = register_layout("H", 2, initial=())
        memory = layout.initial_memory()
        memory, _ = layout.apply_primitive(memory, WriteOp("H", 0, (1,)))
        memory, value = layout.apply_primitive(memory, ReadOp("H", 0))
        assert value == (1,)

    def test_register_count(self):
        layout = merge_layouts(snapshot_layout("A", 5), register_layout("H", 1))
        assert layout.register_count() == 6

    def test_wrong_op_kind_rejected(self):
        layout = snapshot_layout("A", 2)
        with pytest.raises(ProtocolViolation):
            layout.apply_primitive(layout.initial_memory(), ReadOp("A", 0))

    def test_unknown_object_rejected(self):
        layout = snapshot_layout("A", 2)
        with pytest.raises(ProtocolViolation):
            layout.apply_primitive(layout.initial_memory(), ScanOp("B"))

    def test_duplicate_bank_names_rejected(self):
        bank = BankSpec("b", 1)
        with pytest.raises(ConfigurationError):
            MemoryLayout((bank, bank), {})

    def test_binding_to_unknown_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout((), {"A": PrimitiveBinding("registers", "nope")})

    def test_merge_rejects_duplicate_objects(self):
        with pytest.raises(ConfigurationError):
            merge_layouts(snapshot_layout("A", 2), snapshot_layout("A", 2))

    def test_coord_and_op_coord(self):
        layout = merge_layouts(snapshot_layout("A", 3), register_layout("H", 1))
        assert layout.op_coord(UpdateOp("A", 2, "x")) == RegisterCoord(0, 2)
        assert layout.op_coord(WriteOp("H", 0, "y")) == RegisterCoord(1, 0)
        assert layout.op_coord(ScanOp("A")) is None

    def test_coord_out_of_range(self):
        layout = snapshot_layout("A", 3)
        with pytest.raises(MemoryError_):
            layout.op_coord(UpdateOp("A", 3, "x"))

    def test_banks_implicitly_addressable_as_register_objects(self):
        layout = snapshot_layout("A", 2)
        bank_name = layout.banks[0].name
        memory = layout.initial_memory()
        memory, _ = layout.apply_primitive(memory, WriteOp(bank_name, 0, "w"))
        _, value = layout.apply_primitive(memory, ReadOp(bank_name, 0))
        assert value == "w"

    def test_empty_layout_allowed(self):
        layout = MemoryLayout((), {})
        assert layout.register_count() == 0
        assert layout.initial_memory() == ()
