"""Unit tests for the packed configuration codec and backend registry.

The codec's contract (see ``repro.explore.packed``): canonical —
equal values encode to identical bytes regardless of construction
order or memo state; invertible — ``decode(encode(v)) == v`` with no
lossy fallback; and strict — values outside the vocabulary, corrupt
framing, and truncation all raise :class:`PackedCodecError` rather
than round-tripping garbage.
"""

import dataclasses
import math
import pickle

import pytest

from repro import OneShotSetAgreement, System
from repro._types import BOT, Params
from repro.explore import symmetry_classes
from repro.explore.packed import (
    BACKENDS,
    MAGIC,
    PackedCodec,
    PackedCodecError,
    PackedState,
    make_backend,
    packed_fingerprint,
)


@dataclasses.dataclass(frozen=True)
class _Point:
    """A generic (non-skeleton) frozen dataclass for codec tests."""

    x: int
    y: object


VOCABULARY = [
    None,
    BOT,
    True,
    False,
    0,
    -1,
    63,
    64,
    -64,
    12_345_678_901_234_567_890,
    -(1 << 200),
    0.0,
    -0.0,
    1.5,
    float("inf"),
    float("-inf"),
    "",
    "héllo wörld ✓",
    b"",
    b"\x00\xff\x80",
    (),
    (1, (2, ("deep", BOT))),
    [1, [2, []]],
    frozenset(),
    frozenset({1, "a", (2, 3)}),
    {7, 8, 9},
    {},
    {"k": 1, 5: None, ("t",): [BOT]},
    Params(),
    Params(alpha=1, beta=("b", 2)),
    _Point(1, "y"),
    _Point(2, _Point(3, (BOT,))),
]


def make_system():
    return System(OneShotSetAgreement(n=3, m=1, k=2),
                  workloads=[["a"], ["b"], ["c"]])


def bfs_configs(system, limit):
    """First *limit* configurations of the system's reachable graph."""
    from repro.errors import NotEnabledError

    configs = [system.initial_configuration()]
    frontier = list(configs)
    while frontier and len(configs) < limit:
        config = frontier.pop(0)
        for pid in range(len(config.procs)):
            try:
                step = system.step(config, pid)
            except NotEnabledError:
                continue
            if step is not None:
                configs.append(step.config)
                frontier.append(step.config)
    return configs[:limit]


class TestRoundTrip:
    @pytest.mark.parametrize("value", VOCABULARY, ids=repr)
    def test_vocabulary_value(self, value):
        codec = PackedCodec()
        blob = codec.encode_value(value)
        back = codec.decode_value(blob)
        assert back == value
        assert type(back) is type(value)

    def test_nan_round_trips_bitwise(self):
        codec = PackedCodec()
        back = codec.decode_value(codec.encode_value(float("nan")))
        assert math.isnan(back)

    def test_negative_zero_sign_preserved(self):
        codec = PackedCodec()
        back = codec.decode_value(codec.encode_value(-0.0))
        assert math.copysign(1.0, back) == -1.0

    def test_configurations_round_trip(self):
        codec = PackedCodec()
        for config in bfs_configs(make_system(), 150):
            assert codec.decode(codec.encode(config)) == config

    def test_decode_rejects_non_configuration_blob(self):
        codec = PackedCodec()
        with pytest.raises(PackedCodecError, match="not Configuration"):
            codec.decode(codec.encode_value(42))


class TestCanonicalBytes:
    def test_set_and_dict_order_independent(self):
        codec = PackedCodec()
        assert codec.encode_value(frozenset([1, 2, 3])) == codec.encode_value(
            frozenset([3, 1, 2])
        )
        assert codec.encode_value({"a": 1, "b": 2}) == codec.encode_value(
            dict([("b", 2), ("a", 1)])
        )

    def test_warm_memos_do_not_change_bytes(self):
        warm = PackedCodec()
        config = bfs_configs(make_system(), 40)[-1]
        for _ in range(3):
            warm_blob = warm.encode(config)
        assert warm_blob == PackedCodec().encode(config)

    def test_distinct_container_types_encode_distinctly(self):
        codec = PackedCodec()
        blobs = {
            codec.encode_value(value)
            for value in [(1, 2), [1, 2], frozenset({1, 2}), {1, 2}, {1: 2}]
        }
        assert len(blobs) == 5

    def test_memo_limit_overflow_is_semantically_inert(self):
        tiny = PackedCodec(memo_limit=2)
        configs = bfs_configs(make_system(), 30)
        expected = [PackedCodec().encode(c) for c in configs]
        assert [tiny.encode(c) for c in configs] == expected


class TestStrictness:
    @pytest.mark.parametrize("value", [object(), complex(1, 2), range(3)],
                             ids=type)
    def test_out_of_vocabulary_raises(self, value):
        with pytest.raises(PackedCodecError, match="cannot pack"):
            PackedCodec().encode_value(value)

    def test_bad_magic_raises(self):
        with pytest.raises(PackedCodecError, match="magic"):
            PackedCodec().decode_value(b"XX1N")

    def test_truncation_raises(self):
        codec = PackedCodec()
        blob = codec.encode_value((1, "abcdef", (2.5, BOT)))
        for cut in range(len(MAGIC), len(blob)):
            with pytest.raises(PackedCodecError):
                codec.decode_value(blob[:cut])

    def test_trailing_bytes_raise(self):
        codec = PackedCodec()
        with pytest.raises(PackedCodecError, match="trailing"):
            codec.decode_value(codec.encode_value(1) + b"\x00")

    def test_unknown_tag_raises(self):
        with pytest.raises(PackedCodecError):
            PackedCodec().decode_value(MAGIC + b"\xfe")

    def test_pickled_codec_drops_memos(self):
        codec = PackedCodec(memo_limit=17)
        config = bfs_configs(make_system(), 5)[-1]
        blob = codec.encode(config)
        clone = pickle.loads(pickle.dumps(codec))
        assert clone._proc_memo == {}
        assert clone._memo_limit == 17
        assert clone.encode(config) == blob


class TestPackedState:
    def test_lazy_encode_matches_codec(self):
        codec = PackedCodec()
        config = make_system().initial_configuration()
        carrier = PackedState(config=config, codec=codec)
        assert carrier.data == codec.encode(config)
        assert carrier.configuration(codec) is config

    def test_lazy_decode_happens_once(self):
        codec = PackedCodec()
        config = make_system().initial_configuration()
        carrier = PackedState(codec.encode(config))
        first = carrier.configuration(codec)
        assert first == config
        assert carrier.configuration(codec) is first

    def test_pickle_ships_bytes_only(self):
        codec = PackedCodec()
        config = make_system().initial_configuration()
        carrier = PackedState(config=config, codec=codec)
        clone = pickle.loads(pickle.dumps(carrier))
        assert clone._config is None and clone._codec is None
        assert clone.data == codec.encode(config)
        assert clone.configuration(PackedCodec()) == config

    def test_requires_data_or_config_and_codec(self):
        with pytest.raises(ValueError):
            PackedState()
        with pytest.raises(ValueError):
            PackedState(config=make_system().initial_configuration())


class TestBackends:
    def test_public_backends(self):
        assert BACKENDS == ("reference", "packed")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("pickle")

    @pytest.mark.parametrize("name", ["reference", "packed"])
    def test_fingerprints_agree_across_backends(self, name):
        system = make_system()
        backend = make_backend(name)
        oracle = make_backend("reference")
        for config in bfs_configs(system, 60):
            fp, data = backend.fingerprint(config, None)
            assert (fp, data) == oracle.fingerprint(config, None)
            assert fp == packed_fingerprint(data)
            carrier = backend.carrier(config, data)
            assert backend.configuration(carrier) == config
            assert backend.unpack(backend.pack(carrier)) is not None

    def test_orbit_fingerprints_agree_across_backends(self):
        from repro.agreement.anonymous import AnonymousOneShotSetAgreement

        system = System(AnonymousOneShotSetAgreement(n=3, m=1, k=2),
                        workloads=[["v"]] * 3)
        classes = symmetry_classes(system)
        assert classes is not None
        reference, packed = make_backend("reference"), make_backend("packed")
        for config in bfs_configs(system, 60):
            assert reference.fingerprint(config, classes) == \
                packed.fingerprint(config, classes)

    def test_legacy_refuses_persistence(self):
        legacy = make_backend("legacy")
        assert not legacy.supports_persistence
        config = make_system().initial_configuration()
        with pytest.raises(PackedCodecError):
            legacy.pack(legacy.carrier(config))
        with pytest.raises(PackedCodecError):
            legacy.unpack(b"")

    def test_legacy_rejected_by_explore_persistence(self, tmp_path):
        from repro.explore import explore_safety

        with pytest.raises(ValueError, match="does not support cache_dir"):
            explore_safety(make_system(), k=2, max_configs=10,
                           backend="legacy", cache_dir=tmp_path / "cache")
