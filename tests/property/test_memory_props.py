"""Hypothesis properties of the shared-memory model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import BOT
from repro.memory import register, snapshot
from repro.memory.layout import merge_layouts, register_layout, snapshot_layout
from repro.memory.ops import ReadOp, ScanOp, UpdateOp, WriteOp

values = st.one_of(st.integers(), st.text(max_size=4), st.none(), st.just(BOT))
small_sizes = st.integers(min_value=1, max_value=8)


@st.composite
def bank_and_index(draw):
    size = draw(small_sizes)
    bank = tuple(draw(st.lists(values, min_size=size, max_size=size)))
    index = draw(st.integers(min_value=0, max_value=size - 1))
    return bank, index


class TestRegisterSemantics:
    @given(bank_and_index(), values)
    def test_read_after_write(self, bi, value):
        bank, index = bi
        assert register.read(register.write(bank, index, value), index) == value

    @given(bank_and_index(), values)
    def test_write_preserves_other_registers(self, bi, value):
        bank, index = bi
        new = register.write(bank, index, value)
        for j in range(len(bank)):
            if j != index:
                assert new[j] == bank[j]

    @given(bank_and_index(), values, values)
    def test_last_write_wins(self, bi, first, second):
        bank, index = bi
        twice = register.write(register.write(bank, index, first), index, second)
        assert register.read(twice, index) == second

    @given(bank_and_index(), values)
    def test_write_is_idempotent(self, bi, value):
        bank, index = bi
        once = register.write(bank, index, value)
        assert register.write(once, index, value) == once

    @given(bank_and_index())
    def test_reads_do_not_mutate(self, bi):
        bank, index = bi
        before = tuple(bank)
        register.read(bank, index)
        assert bank == before


class TestSnapshotSemantics:
    @given(bank_and_index(), values)
    def test_scan_reflects_update(self, bi, value):
        comps, index = bi
        scanned = snapshot.scan(snapshot.update(comps, index, value))
        assert scanned[index] == value

    @given(bank_and_index(), values)
    def test_commuting_updates_to_distinct_components(self, bi, value):
        comps, index = bi
        other = (index + 1) % len(comps)
        if other == index:
            return
        ab = snapshot.update(snapshot.update(comps, index, value), other, "x")
        ba = snapshot.update(snapshot.update(comps, other, "x"), index, value)
        assert ab == ba


class TestLayoutProperties:
    @given(small_sizes, small_sizes)
    def test_merge_register_count_additive(self, a, b):
        layout = merge_layouts(snapshot_layout("A", a), register_layout("H", b))
        assert layout.register_count() == a + b

    @given(bank_and_index(), values)
    @settings(max_examples=30)
    def test_primitive_roundtrip_through_layout(self, bi, value):
        bank, index = bi
        layout = snapshot_layout("A", len(bank))
        memory = layout.initial_memory()
        memory, _ = layout.apply_primitive(memory, UpdateOp("A", index, value))
        _, scanned = layout.apply_primitive(memory, ScanOp("A"))
        assert scanned[index] == value
        assert all(scanned[j] is BOT for j in range(len(bank)) if j != index)

    @given(small_sizes, values)
    @settings(max_examples=30)
    def test_register_object_roundtrip(self, size, value):
        layout = register_layout("R", size)
        memory = layout.initial_memory()
        memory, _ = layout.apply_primitive(memory, WriteOp("R", size - 1, value))
        _, read_back = layout.apply_primitive(memory, ReadOp("R", size - 1))
        assert read_back == value
