"""Property: concurrent writers cannot corrupt the durable layer.

The serve daemon made multi-writer scenarios routine — two daemons
pointed at one ``--data-dir``, a handler thread admitting while the
dispatcher completes, racing stores memoizing the same verdict — so the
durable layer's two defenses get exhaustive treatment here:

* the journal's flock makes the second writer *fail loudly*
  (:class:`~repro.durable.journal.JournalBusyError`) instead of
  interleaving appends, in-process and across real processes; the loser
  retries once the winner releases and loses nothing;
* sealed-blob writes are atomic (``os.replace``), so any interleaving of
  appends and seals — and any number of racing sealers — leaves every
  reader a verified payload, never a torn hybrid.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.durable.checkpoint import read_sealed, write_sealed
from repro.durable.journal import (
    Journal,
    JournalBusyError,
    RunJournal,
    scan_journal,
)

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestJournalSingleWriter:
    def test_second_writer_fails_loudly_in_process(self, tmp_path):
        path = tmp_path / "journal.bin"
        winner = Journal(path)
        winner.append(b"first")
        loser = Journal(path)
        with pytest.raises(JournalBusyError) as excinfo:
            loser.append(b"interloper")
        assert str(path) in str(excinfo.value)
        # the refused append left no trace
        winner.close()
        assert scan_journal(path).payloads == [b"first"]

    def test_loser_retries_after_winner_releases(self, tmp_path):
        """The documented client behavior: catch JournalBusyError, retry
        when the lock frees, and no accepted payload is lost."""
        path = tmp_path / "journal.bin"
        winner = Journal(path)
        winner.append(b"one")
        loser = Journal(path)
        with pytest.raises(JournalBusyError):
            loser.append(b"two")
        winner.close()
        loser.append(b"two")  # the retry
        loser.close()
        assert scan_journal(path).payloads == [b"one", b"two"]

    def test_second_writer_fails_across_real_processes(self, tmp_path):
        """flock is advisory but per open-file-description: a *different
        process* appending to a held journal must also get the error."""
        path = tmp_path / "journal.bin"
        winner = Journal(path)
        winner.append(b"held")
        script = (
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.durable.journal import Journal, JournalBusyError\n"
            f"journal = Journal(Path({str(path)!r}))\n"
            "try:\n"
            "    journal.append(b'crossproc')\n"
            "except JournalBusyError:\n"
            "    sys.exit(42)\n"
            "sys.exit(0)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env={"PYTHONPATH": "src"},
            capture_output=True, timeout=60,
        )
        assert proc.returncode == 42, proc.stderr.decode()
        winner.close()
        assert scan_journal(path).payloads == [b"held"]

    def test_run_journal_writers_conflict_too(self, tmp_path):
        winner = RunJournal(tmp_path / "run")
        winner.record(0, {"op": "admit"}, sync=True)
        loser = RunJournal(tmp_path / "run")
        with pytest.raises(JournalBusyError):
            loser.record(1, {"op": "admit"}, sync=True)
        winner.close()


# An operation stream: append payload i to the journal, or seal payload i
# into one of two cache slots.  Drawn as (kind, slot) pairs.
OPS = st.lists(
    st.tuples(st.sampled_from(["append", "seal"]), st.integers(0, 1)),
    min_size=1, max_size=12,
)


class TestInterleavedAppendsAndSeals:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_any_interleaving_leaves_both_readable(self, tmp_path_factory, ops):
        """Interleaving journal appends with sealed-blob writes (the serve
        data-dir's actual workload: job journal + verdict store side by
        side) must leave the journal a verified prefix and every sealed
        slot its last write."""
        base = tmp_path_factory.mktemp("interleave")
        journal = Journal(base / "journal.bin")
        appended = []
        last_sealed = {}
        for index, (kind, slot) in enumerate(ops):
            payload = f"{kind}-{slot}-{index}".encode()
            if kind == "append":
                journal.append(payload, sync=index % 3 == 0)
                appended.append(payload)
            else:
                write_sealed(base / f"slot-{slot}.bin", payload)
                last_sealed[slot] = payload
        journal.close()
        assert scan_journal(journal.path).payloads == appended
        for slot, payload in last_sealed.items():
            assert read_sealed(base / f"slot-{slot}.bin") == payload

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(4))))
    def test_racing_sealers_any_order_leave_a_valid_entry(
        self, tmp_path_factory, order
    ):
        """N writers sealing the same path in any serialization: the
        survivor is always the last one's payload, intact — os.replace
        admits no torn intermediate state."""
        base = tmp_path_factory.mktemp("race")
        target = base / "entry.bin"
        for writer in order:
            write_sealed(target, f"writer-{writer}".encode())
        assert read_sealed(target) == f"writer-{order[-1]}".encode()


class TestRealProcessSealRace:
    def test_parallel_sealers_never_produce_garbage(self, tmp_path):
        """Four processes hammering write_sealed on one path while the
        parent reads continuously: every read is a complete payload from
        some writer (atomic rename), never a hybrid."""
        target = tmp_path / "entry.bin"
        script = (
            "from pathlib import Path\n"
            "from repro.durable.checkpoint import write_sealed\n"
            "import sys\n"
            "who = sys.argv[1]\n"
            f"target = Path({str(target)!r})\n"
            "for i in range(25):\n"
            "    write_sealed(target, f'{who}:{i}'.encode() * 40)\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, f"w{i}"],
                env={"PYTHONPATH": "src"},
            )
            for i in range(4)
        ]
        observed = set()
        try:
            while any(proc.poll() is None for proc in procs):
                payload = read_sealed(target)
                if payload is not None:
                    observed.add(payload)
        finally:
            for proc in procs:
                proc.wait(timeout=120)
        assert all(proc.returncode == 0 for proc in procs)
        valid = {
            (f"w{i}:{j}".encode()) * 40 for i in range(4) for j in range(25)
        }
        assert observed  # the reader actually raced the writers
        assert observed <= valid
