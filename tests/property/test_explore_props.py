"""Hypothesis: explorer correctness properties.

* POR/full agreement: the "local-first" reduction never changes the
  has-violation verdict (soundness + completeness of the ample set);
* witness validity: every witness schedule replays to a real violation;
* monotonicity: adding registers to Figure 3 never *introduces* violations
  at n = 2 (safety is monotone in provisioned space for this algorithm's
  decision rules — more components only delay decisions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OneShotSetAgreement, System
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.runtime.runner import replay
from repro.spec.properties import check_k_agreement

components_range = st.integers(min_value=1, max_value=4)


def build(components):
    protocol = OneShotSetAgreement(n=2, m=1, k=1, components=components)
    return System(protocol, workloads=distinct_inputs(2))


class TestExplorerProperties:
    @given(components_range)
    @settings(max_examples=8, deadline=None)
    def test_por_agrees_with_full(self, components):
        full = explore_safety(build(components), k=1, max_configs=250_000)
        reduced = explore_safety(
            build(components), k=1, max_configs=250_000,
            reduction="local-first",
        )
        assert bool(full.safety_violations) == bool(reduced.safety_violations)

    @given(components_range, st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_witnesses_always_replay(self, components, use_por):
        result = explore_safety(
            build(components), k=1, max_configs=250_000,
            reduction="local-first" if use_por else "none",
        )
        for witness in result.safety_violations:
            execution = replay(build(components), witness.schedule)
            assert check_k_agreement(execution, k=1)

    @given(components_range)
    @settings(max_examples=8, deadline=None)
    def test_safety_monotone_in_components_at_n2(self, components):
        """If r components are safe, r is >= the nominal 3 — equivalently,
        every violation lives strictly below nominal."""
        result = explore_safety(build(components), k=1, max_configs=250_000)
        if components >= 3:  # nominal n+2m-k = 3
            assert not result.safety_violations
        else:
            assert result.safety_violations
