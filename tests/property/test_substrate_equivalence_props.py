"""Hypothesis: protocols are oblivious to the snapshot substrate.

The substrate swap (atomic → register-level implementation) must be
behaviour-preserving for the algorithm above it.  Exact equality of
executions is too strong under contention (step granularity differs), but
two strong properties hold and are checked here:

* *solo equivalence*: a process running alone sees identical responses on
  every substrate, so its outputs and its local decision path coincide
  exactly;
* *safety equivalence*: randomized adversaries can never extract a safety
  violation from any substrate (linearizability of the substrates makes
  every register-level execution's high-level behaviour one the atomic
  object also allows).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OneShotSetAgreement, RandomScheduler, System, run, run_solo
from repro.bench.workloads import distinct_inputs
from repro.objects import implemented_snapshot_layout
from repro.spec import check_safety

points = st.sampled_from([(3, 1, 1), (3, 1, 2), (4, 1, 2), (4, 2, 3)])
substrates = st.sampled_from(["double-collect", "wait-free", "swmr"])
seeds = st.integers(min_value=0, max_value=5_000)


def build(point, kind):
    n, m, k = point
    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    layout = (
        implemented_snapshot_layout(protocol, kind)
        if kind != "atomic"
        else None
    )
    return System(protocol, workloads=distinct_inputs(n), layout=layout)


class TestSoloEquivalence:
    @given(points, substrates, st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_solo_outputs_identical_across_substrates(self, point, kind, pid):
        n = point[0]
        pid = pid % n
        atomic = run_solo(build(point, "atomic"), pid)
        framed = run_solo(build(point, kind), pid, max_steps=500_000)
        assert atomic.config.procs[pid].outputs == framed.config.procs[pid].outputs

    @given(points, substrates)
    @settings(max_examples=20, deadline=None)
    def test_solo_decision_path_identical(self, point, kind):
        """The protocol-level op/response sequence of a solo run matches:
        same number of updates and scans, same scan responses."""
        from repro.memory.ops import ScanOp, UpdateOp
        from repro.runtime.events import MemoryEvent

        def high_level_trace(execution):
            trace = []
            for event in execution.events:
                if not isinstance(event, MemoryEvent):
                    continue
                if event.in_frame:
                    continue  # register-level detail
                trace.append((type(event.op).__name__, event.response))
            return trace

        atomic = run_solo(build(point, "atomic"), 0)
        # For framed substrates the high-level ops are invisible in events;
        # compare outputs and update counts through the memory instead.
        framed = run_solo(build(point, kind), 0, max_steps=500_000)
        assert atomic.config.procs[0].outputs == framed.config.procs[0].outputs
        assert atomic.config.procs[0].persistent == framed.config.procs[0].persistent


class TestSafetyEquivalence:
    @given(points, substrates, seeds, st.integers(min_value=0, max_value=800))
    @settings(max_examples=30, deadline=None)
    def test_no_substrate_leaks_violations(self, point, kind, seed, budget):
        n, m, k = point
        system = build(point, kind)
        execution = run(system, RandomScheduler(seed=seed), max_steps=budget,
                        on_limit="return")
        assert not check_safety(execution, k)
