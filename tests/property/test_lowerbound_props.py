"""Hypothesis: the lower-bound constructions across sampled parameters.

Randomized-parameter versions of the pinned-point tests: wherever the
formulas say the covering construction must succeed, it does; and the
certified output counts are exactly ``k+1`` (the construction never
over- or under-shoots the contradiction it builds).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RepeatedSetAgreement, System
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds import covering_construction
from repro.lowerbounds.bounds import repeated_lower_bound
from repro.runtime.runner import replay


@st.composite
def attackable_points(draw):
    """Small (n, m, k) with n+m−k−1 ≥ 1 registers to attack."""
    n = draw(st.integers(min_value=3, max_value=5))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    m = draw(st.integers(min_value=1, max_value=min(k, 2)))
    return n, m, k


class TestCoveringAcrossParameters:
    @given(attackable_points())
    @settings(max_examples=10, deadline=None)
    def test_construction_succeeds_below_bound(self, point):
        n, m, k = point
        bound = repeated_lower_bound(n, m, k)
        if bound - 1 < 1:
            return
        system = System(
            RepeatedSetAgreement(n=n, m=m, k=k, components=bound - 1),
            workloads=distinct_inputs(n, instances=12),
        )
        result = covering_construction(system, m=m, k=k)
        assert result.success
        assert len(result.distinct_outputs) == k + 1

    @given(attackable_points(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_certificate_replays_on_fresh_system(self, point, _salt):
        n, m, k = point
        bound = repeated_lower_bound(n, m, k)
        if bound - 1 < 1:
            return

        def build():
            return System(
                RepeatedSetAgreement(n=n, m=m, k=k, components=bound - 1),
                workloads=distinct_inputs(n, instances=12),
            )

        result = covering_construction(build(), m=m, k=k)
        fresh = replay(build(), result.schedule)
        outputs = set(fresh.instance_outputs(result.target_instance))
        assert len(outputs) == k + 1

    @given(attackable_points())
    @settings(max_examples=8, deadline=None)
    def test_group_sizes_match_the_proof(self, point):
        """|Q_1| = k+1-(c-1)m, |Q_j| = m for j > 1, groups disjoint."""
        import math

        n, m, k = point
        bound = repeated_lower_bound(n, m, k)
        if bound - 1 < 1:
            return
        system = System(
            RepeatedSetAgreement(n=n, m=m, k=k, components=bound - 1),
            workloads=distinct_inputs(n, instances=12),
        )
        result = covering_construction(system, m=m, k=k)
        c = math.ceil((k + 1) / m)
        assert len(result.groups) == c
        assert len(result.groups[0].final_q) == k + 1 - (c - 1) * m
        for group in result.groups[1:]:
            assert len(group.final_q) == m
        seen = set()
        for group in result.groups:
            assert not (seen & set(group.final_q))
            seen.update(group.final_q)
