"""Hypothesis properties of the Figure 1 formulas and their relationships."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lowerbounds.bounds import (
    anonymous_oneshot_lower_bound,
    anonymous_oneshot_upper_bound,
    anonymous_repeated_upper_bound,
    bounds_consistent,
    figure1_table,
    lemma9_process_requirement,
    repeated_lower_bound,
    repeated_upper_bound,
)


@st.composite
def parameter_points(draw):
    n = draw(st.integers(min_value=2, max_value=200))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    m = draw(st.integers(min_value=1, max_value=k))
    return n, m, k


class TestFormulaRelations:
    @given(parameter_points())
    @settings(max_examples=200)
    def test_lower_at_most_upper(self, point):
        n, m, k = point
        assert repeated_lower_bound(n, m, k) <= repeated_upper_bound(n, m, k)

    @given(parameter_points())
    @settings(max_examples=200)
    def test_upper_never_exceeds_n(self, point):
        n, m, k = point
        assert repeated_upper_bound(n, m, k) <= n

    @given(parameter_points())
    @settings(max_examples=200)
    def test_lower_bound_positive(self, point):
        n, m, k = point
        assert repeated_lower_bound(n, m, k) >= 1 + m - 0  # n > k => >= m+1
        assert repeated_lower_bound(n, m, k) >= m + 1

    @given(parameter_points())
    @settings(max_examples=200)
    def test_anonymous_lower_below_anonymous_upper(self, point):
        n, m, k = point
        lower = anonymous_oneshot_lower_bound(n, m, k)
        upper = anonymous_oneshot_upper_bound(n, m, k)
        assert lower < upper or upper == 0

    @given(parameter_points())
    @settings(max_examples=200)
    def test_anonymous_repeated_costs_one_extra(self, point):
        n, m, k = point
        assert (
            anonymous_repeated_upper_bound(n, m, k)
            == anonymous_oneshot_upper_bound(n, m, k) + 1
        )

    @given(parameter_points())
    @settings(max_examples=100)
    def test_full_table_consistent(self, point):
        n, m, k = point
        assert bounds_consistent(n, m, k)
        assert len(figure1_table(n, m, k)) == 8


class TestAsymptoticShape:
    @given(st.integers(min_value=3, max_value=60))
    @settings(max_examples=40)
    def test_anonymous_lower_grows_like_sqrt_n(self, x):
        """Doubling n (at fixed m = k = 1) multiplies the bound by ~sqrt(2)
        (up to the additive constant)."""
        n = 4 * x
        small = anonymous_oneshot_lower_bound(n, 1, 1)
        large = anonymous_oneshot_lower_bound(4 * n, 1, 1)
        assume(small > 1)
        assert 1.5 <= large / small <= 2.5  # ~2 for a sqrt law

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_lemma9_requirement_quadratic_in_r(self, r, m):
        k = m  # simplest regime
        quad = lemma9_process_requirement(m, k, 2 * r) / max(
            lemma9_process_requirement(m, k, r), 1
        )
        if r >= 8:
            assert 3.0 <= quad <= 4.5  # ~4 for a quadratic law


class TestTheorem10Arithmetic:
    @given(parameter_points())
    @settings(max_examples=150)
    def test_threshold_implies_lemma9_applicable(self, point):
        """Theorem 10's derivation: r <= sqrt(m(n/k - 2)) implies
        n >= ceil((k+1)/m) (m + (r²-r)/2) — re-check the paper's chain of
        inequalities numerically."""
        n, m, k = point
        threshold = anonymous_oneshot_lower_bound(n, m, k)
        r = int(threshold)
        if r < 1:
            return
        assert n >= lemma9_process_requirement(m, k, r), (n, m, k, r)
