"""Hypothesis: the analyzer's output is bit-identical and order-free.

The analyzer makes determinism claims about everyone else's code, so it
is held to the same standard as an explore verdict: the JSON artifact
must be byte-identical across repeated runs and independent of the
filesystem's directory-listing order (files are discovered by sorted
walks, findings are reported in a stable sort).  Hypothesis drives
random subsets of the fixture corpus and random creation orders.
"""

import pathlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.determinism import lint_paths

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures" / "analysis"
CORPUS = sorted(p.name for p in FIXTURES.glob("*.py"))


def _artifact(paths):
    """The full CLI-equivalent artifact: both passes, usage threaded."""
    usage = {}
    report = lint_paths(paths, all_rules=True, usage=usage)
    report.extend(
        analyze_concurrency(paths, all_rules=True, usage=usage)
    )
    return report.to_json()


@given(st.lists(st.sampled_from(CORPUS), min_size=1, unique=True))
@settings(max_examples=20, deadline=None)
def test_repeated_runs_are_bit_identical(names):
    paths = [str(FIXTURES / name) for name in names]
    assert _artifact(paths) == _artifact(paths)


@given(
    st.lists(st.sampled_from(CORPUS), min_size=2, unique=True).flatmap(
        lambda names: st.permutations(names).map(lambda perm: (names, perm))
    )
)
@settings(max_examples=20, deadline=None)
def test_directory_listing_order_does_not_matter(tmp_path_factory, pair):
    # Two directories holding the same files, created in different
    # orders: readdir order differs, the artifact must not.
    names, permuted = pair
    artifacts = []
    for ordering in (names, permuted):
        directory = tmp_path_factory.mktemp("corpus")
        for name in ordering:
            (directory / name).write_text((FIXTURES / name).read_text())
        artifacts.append(_artifact([str(directory)]))

    # Path prefixes differ between the two temp dirs; strip them before
    # comparing (everything else, including order, must match).
    def strip(artifact):
        lines = []
        for line in artifact.splitlines():
            if '"file"' in line:
                line = '"file": "' + line.rsplit("/", 1)[-1]
            lines.append(line)
        return "\n".join(lines)

    assert strip(artifacts[0]) == strip(artifacts[1])


def test_src_tree_artifact_is_stable_across_runs():
    src = pathlib.Path(__file__).parent.parent.parent / "src" / "repro"
    first = _run_src(src)
    second = _run_src(src)
    assert first == second


def _run_src(src):
    usage = {}
    report = lint_paths([str(src)], usage=usage)
    report.extend(analyze_concurrency([str(src)], usage=usage))
    return report.to_json()
