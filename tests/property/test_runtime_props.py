"""Hypothesis properties of the simulation runtime: determinism & purity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    System,
    replay,
    run,
)
from repro.bench.workloads import distinct_inputs

params = st.sampled_from([(2, 1, 1), (3, 1, 1), (3, 1, 2), (4, 2, 2), (4, 2, 3)])
seeds = st.integers(min_value=0, max_value=10_000)


def build(n, m, k, repeated=False):
    if repeated:
        protocol = RepeatedSetAgreement(n=n, m=m, k=k)
        return System(protocol, workloads=distinct_inputs(n, instances=2))
    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    return System(protocol, workloads=distinct_inputs(n))


class TestDeterminism:
    @given(params, seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_execution(self, point, seed):
        n, m, k = point
        a = run(build(n, m, k), RandomScheduler(seed=seed), max_steps=600,
                on_limit="return")
        b = run(build(n, m, k), RandomScheduler(seed=seed), max_steps=600,
                on_limit="return")
        assert a.schedule == b.schedule
        assert a.events == b.events
        assert a.config == b.config

    @given(params, seeds)
    @settings(max_examples=25, deadline=None)
    def test_replay_reproduces(self, point, seed):
        n, m, k = point
        original = run(build(n, m, k), RandomScheduler(seed=seed),
                       max_steps=500, on_limit="return")
        again = replay(build(n, m, k), original.schedule)
        assert again.events == original.events
        assert again.config == original.config


class TestPurity:
    @given(params, seeds, st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_step_does_not_mutate_source_config(self, point, seed, cut):
        n, m, k = point
        system = build(n, m, k, repeated=True)
        execution = run(system, RandomScheduler(seed=seed), max_steps=cut,
                        on_limit="return")
        config = execution.config
        snapshot_before = config
        for pid in system.enabled_pids(config):
            system.step(config, pid)
        assert config == snapshot_before

    @given(params, seeds, st.integers(min_value=0, max_value=80))
    @settings(max_examples=25, deadline=None)
    def test_step_deterministic_from_any_config(self, point, seed, cut):
        n, m, k = point
        system = build(n, m, k)
        execution = run(system, RandomScheduler(seed=seed), max_steps=cut,
                        on_limit="return")
        for pid in system.enabled_pids(execution.config):
            first = system.step(execution.config, pid)
            second = system.step(execution.config, pid)
            assert first.config == second.config
            assert first.event == second.event


class TestSchedulePrefix:
    @given(params, seeds, st.integers(min_value=0, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_prefix_replay_then_continue(self, point, seed, cut):
        """Splitting a schedule at any point and resuming from the midpoint
        configuration yields the identical final configuration — the
        property the covering construction's splicing relies on."""
        n, m, k = point
        system = build(n, m, k)
        whole = run(system, RandomScheduler(seed=seed), max_steps=200,
                    on_limit="return")
        cut = min(cut, len(whole.schedule))
        head = replay(system, whole.schedule[:cut])
        tail = replay(system, whole.schedule[cut:], initial=head.config)
        assert tail.config == whole.config
