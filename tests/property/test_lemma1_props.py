"""Hypothesis: Lemma 1 as an executable statement.

Lemma 1: for any set V of m input values and any set Q of m processes,
there is an execution of a correct m-obstruction-free k-set agreement
algorithm in which only processes in Q take steps and all values in V are
output.  The search :func:`repro.lowerbounds.cloning.alpha_execution`
realizes it; these properties exercise the lemma across sampled Q and V.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OneShotSetAgreement, RepeatedSetAgreement, System
from repro.lowerbounds.cloning import alpha_execution
from repro.runtime.events import InvokeEvent, MemoryEvent


@st.composite
def q_choices(draw):
    n = 4
    q = draw(st.sets(st.integers(min_value=0, max_value=n - 1),
                     min_size=2, max_size=2))
    return n, tuple(sorted(q))


class TestLemma1:
    @given(q_choices())
    @settings(max_examples=10, deadline=None)
    def test_m2_groups_output_both_values(self, nq):
        n, group = nq
        protocol = RepeatedSetAgreement(n=n, m=2, k=2)
        system = System(protocol, workloads=[[f"v{i}"] for i in range(n)])
        values = [f"v{pid}" for pid in group]
        execution = alpha_execution(system, group, values)
        assert execution is not None
        outputs = set(execution.instance_outputs(1))
        assert set(values) <= outputs

    @given(q_choices())
    @settings(max_examples=10, deadline=None)
    def test_only_group_members_take_steps(self, nq):
        n, group = nq
        protocol = RepeatedSetAgreement(n=n, m=2, k=2)
        system = System(protocol, workloads=[[f"v{i}"] for i in range(n)])
        values = [f"v{pid}" for pid in group]
        execution = alpha_execution(system, group, values)
        assert execution is not None
        steppers = {e.pid for e in execution.events
                    if isinstance(e, (InvokeEvent, MemoryEvent))}
        assert steppers <= set(group)

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_m1_alpha_is_the_solo_run(self, pid):
        protocol = OneShotSetAgreement(n=4, m=1, k=2)
        system = System(protocol, workloads=[[f"v{i}"] for i in range(4)])
        execution = alpha_execution(system, [pid], [f"v{pid}"])
        assert execution is not None
        assert set(e.pid for e in execution.events) == {pid}
        assert execution.config.procs[pid].outputs == (f"v{pid}",)
