"""Property: no on-disk corruption can crash a durable load or fake data.

The durable layer's promise is exhaustive, so the tests are too: for a
journal, a checkpoint, and a sealed cache entry, *every* possible
truncation point and *every* possible single-bit flip is tried, and each
mutated file must (a) load without raising and (b) yield either nothing
or a verified prefix of what was written — never plausible garbage.
These loops are deterministic (no sampling): the files are small enough
that full coverage costs a few thousand loads.
"""

import warnings

from repro.durable.checkpoint import CheckpointStore
from repro.durable.journal import (
    JOURNAL_MAGIC,
    Journal,
    RunJournal,
    scan_journal,
)
from repro.explore.cache import (
    CACHE_VERSION,
    CacheEntry,
    load_entry,
    save_entry,
)


def make_journal_bytes(tmp_path):
    journal = Journal(tmp_path / "pristine.bin")
    payloads = [b"alpha", b"beta-beta", b"gamma" * 3, b"d"]
    for payload in payloads:
        journal.append(payload)
    journal.close()
    return journal.path.read_bytes(), payloads


class TestJournalExhaustive:
    def test_every_truncation_yields_a_clean_prefix(self, tmp_path):
        data, payloads = make_journal_bytes(tmp_path)
        victim = tmp_path / "victim.bin"
        for cut in range(len(data) + 1):
            victim.write_bytes(data[:cut])
            scan = scan_journal(victim)  # must never raise
            assert scan.payloads == payloads[: len(scan.payloads)]
            if cut >= len(JOURNAL_MAGIC):
                # every byte is accounted for: verified prefix + discard
                assert scan.valid_bytes + scan.discarded_bytes == cut
            else:
                # a torn header reads as an unreadable (quarantine-grade)
                # file, never as data
                assert scan.payloads == [] and scan.valid_bytes in (
                    0, len(JOURNAL_MAGIC),
                )

    def test_every_bit_flip_yields_a_clean_prefix(self, tmp_path):
        data, payloads = make_journal_bytes(tmp_path)
        victim = tmp_path / "victim.bin"
        for offset in range(len(data)):
            flipped = bytearray(data)
            flipped[offset] ^= 0x01
            victim.write_bytes(bytes(flipped))
            scan = scan_journal(victim)  # must never raise
            # every surviving payload is *exactly* one that was written,
            # in order — a flip can shorten the prefix, never alter it
            # (flipping the low bit of a length prefix can merely re-frame
            # the tail, which the per-record digests then reject)
            assert scan.payloads == payloads[: len(scan.payloads)]

    def test_run_journal_recover_never_raises(self, tmp_path):
        runlog = RunJournal(tmp_path / "run")
        runlog.checkpoint({"agg": 1}, next_index=2)
        runlog.record(2, {"delta": "x"})
        runlog.record(3, {"delta": "y"})
        runlog.close()
        pristine = runlog.journal.path.read_bytes()
        for offset in range(len(pristine)):
            flipped = bytearray(pristine)
            flipped[offset] ^= 0x01
            runlog.journal.path.write_bytes(bytes(flipped))
            fresh = RunJournal(tmp_path / "run")
            ck, records, report = fresh.recover()  # must never raise
            assert ck == {"agg": 1}
            assert [obj for _, obj in records] in (
                [], [{"delta": "x"}], [{"delta": "x"}, {"delta": "y"}],
            )
            # recover() may repair (truncate) the file; restore for the
            # next iteration either way
            runlog.journal.path.write_bytes(pristine)


class TestCheckpointExhaustive:
    def test_every_mutation_reads_as_corrupt_or_exact(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.bin", tmp_path / "q")
        store.save(("format", 7, {"state": list(range(10))}))
        pristine = store.path.read_bytes()
        mutations = [pristine[:cut] for cut in range(len(pristine))]
        mutations += [
            bytes(b ^ (0x01 if i == offset else 0x00) for i, b in
                  enumerate(pristine))
            for offset in range(len(pristine))
        ]
        for blob in mutations:
            store.path.write_bytes(blob)
            obj, problem = store.load()  # must never raise
            if problem is None:
                assert obj == ("format", 7, {"state": list(range(10))})
            else:
                assert obj is None and problem in ("missing", "corrupt")
        store.path.write_bytes(pristine)
        assert store.load() == (("format", 7, {"state": list(range(10))}), None)


class TestCacheEntryExhaustive:
    def test_every_mutation_is_a_miss_never_a_wrong_entry(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        entry = CacheEntry(
            version=CACHE_VERSION, key="k" * 32, finished=True,
            result={"verdict": "ok"}, parents=None, frontier=None,
            explored=123,
        )
        path = save_entry(cache_dir, entry.key, entry)
        pristine = path.read_bytes()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # quarantine warnings, expected
            for cut in range(len(pristine)):
                path.write_bytes(pristine[:cut])
                assert load_entry(cache_dir, entry.key) is None  # never raises
            for offset in range(len(pristine)):
                flipped = bytearray(pristine)
                flipped[offset] ^= 0x01
                path.write_bytes(bytes(flipped))
                loaded = load_entry(cache_dir, entry.key)
                # a single bit flip can never verify: the digest covers
                # every payload byte and the frame rejects the rest
                assert loaded is None
        path.write_bytes(pristine)
        restored = load_entry(cache_dir, entry.key)
        assert restored is not None and restored.explored == 123

    def test_version_skew_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        stale = CacheEntry(
            version=CACHE_VERSION - 1, key="key", finished=True,
            result=None, parents=None, frontier=None, explored=0,
        )
        save_entry(cache_dir, "key", stale)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert load_entry(cache_dir, "key") is None

    def test_unpicklable_payload_is_a_miss(self, tmp_path):
        from repro.durable.checkpoint import write_sealed
        from repro.explore.cache import entry_path

        cache_dir = str(tmp_path / "cache")
        write_sealed(entry_path(cache_dir, "key"), b"sealed but not pickle")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert load_entry(cache_dir, "key") is None
