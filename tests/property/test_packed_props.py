"""Hypothesis: invertibility and canonicality of the packed codec.

Two load-bearing properties back every packed-backend claim (see
``repro.explore.packed``): ``decode(encode(v)) == v`` exactly, and
bytes are a pure function of the *value* — independent of object
identity, container insertion order, and memo state.  Both are checked
over randomized vocabulary values and over real reachable
configurations of all four algorithm families on the paper's
1 ≤ m ≤ k < n grid.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OneShotSetAgreement, RepeatedSetAgreement, System
from repro._types import BOT, Params
from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousRepeatedSetAgreement,
)
from repro.bench.workloads import distinct_inputs
from repro.errors import NotEnabledError
from repro.explore import symmetry_classes
from repro.explore.packed import PackedCodec, make_backend

leaves = st.one_of(
    st.none(),
    st.just(BOT),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=8),
)

#: Hashable values, usable as set elements and dict keys.
hashable_values = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.frozensets(inner, max_size=3),
    ),
    max_leaves=8,
)

#: The full codec vocabulary (minus dataclasses, covered by the grid).
values = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4).map(tuple),
        st.lists(inner, max_size=4),
        st.frozensets(hashable_values, max_size=3),
        st.sets(hashable_values, max_size=3),
        st.dictionaries(hashable_values, inner, max_size=3),
        st.dictionaries(
            st.text(min_size=1, max_size=6), inner, max_size=3
        ).map(Params),  # positional mapping — `**d` chokes on a "self" key
    ),
    max_leaves=12,
)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, value):
        codec = PackedCodec()
        back = codec.decode_value(codec.encode_value(value))
        assert back == value
        assert type(back) is type(value)

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_bytes_are_a_pure_function_of_the_value(self, value):
        warm = PackedCodec()
        blob = warm.encode_value(value)
        # Same codec, same object: memo hits must not change the bytes.
        assert warm.encode_value(value) == blob
        # Fresh codec, structurally equal but distinct objects: identity
        # (and hence memo keys) must not leak into the encoding.
        assert PackedCodec().encode_value(copy.deepcopy(value)) == blob


# --------------------------------------------------------------------- #
# Real configurations: all four families on the 1 <= m <= k < n grid.
# --------------------------------------------------------------------- #

GRID = [(n, m, k) for n in (2, 3, 4) for m in range(1, n)
        for k in range(m, n) if m <= k]


def family_systems(n, m, k):
    yield System(OneShotSetAgreement(n=n, m=m, k=k),
                 workloads=distinct_inputs(n))
    yield System(RepeatedSetAgreement(n=n, m=m, k=k),
                 workloads=distinct_inputs(n, instances=2))
    yield System(AnonymousOneShotSetAgreement(n=n, m=m, k=k),
                 workloads=[["v"]] * n)
    yield System(AnonymousRepeatedSetAgreement(n=n, m=m, k=k),
                 workloads=[["v1", "v2"]] * n)


def reachable_configs(system, limit=25):
    configs = [system.initial_configuration()]
    frontier = list(configs)
    while frontier and len(configs) < limit:
        config = frontier.pop(0)
        for pid in range(len(config.procs)):
            try:
                step = system.step(config, pid)
            except NotEnabledError:
                continue
            if step is not None:
                configs.append(step.config)
                frontier.append(step.config)
    return configs[:limit]


@pytest.mark.parametrize("point", GRID, ids=lambda p: "n%d-m%d-k%d" % p)
def test_grid_round_trip_and_backend_fingerprint_parity(point):
    codec = PackedCodec()
    reference, packed = make_backend("reference"), make_backend("packed")
    for system in family_systems(*point):
        classes = symmetry_classes(system)
        for config in reachable_configs(system):
            assert codec.decode(codec.encode(config)) == config
            assert reference.fingerprint(config, None) == \
                packed.fingerprint(config, None)
            if classes is not None:
                assert reference.fingerprint(config, classes) == \
                    packed.fingerprint(config, classes)
