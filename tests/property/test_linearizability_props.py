"""Hypothesis: snapshot substrates are linearizable on random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RandomScheduler, System, run
from repro._types import Params
from repro.memory.layout import ImplementedBinding, MemoryLayout
from repro.memory.ops import ScanOp, UpdateOp
from repro.objects import (
    DoubleCollectSnapshot,
    SingleWriterSnapshot,
    WaitFreeSnapshot,
)
from repro.spec.linearizability import (
    SnapshotScript,
    check_linearizable,
    extract_history,
)

COMPONENTS = 2
N = 3


@st.composite
def scripts_strategy(draw):
    """Per-process scripts of 1-3 update/scan ops on a 2-component object."""
    scripts = []
    for pid in range(N):
        length = draw(st.integers(min_value=1, max_value=3))
        ops = []
        for index in range(length):
            if draw(st.booleans()):
                component = draw(st.integers(min_value=0, max_value=COMPONENTS - 1))
                ops.append(UpdateOp("A", component, f"p{pid}.{index}"))
            else:
                ops.append(ScanOp("A"))
        scripts.append(ops)
    return scripts


def layout_for(impl):
    banks = impl.bank_specs(prefix="A")
    return MemoryLayout(
        tuple(banks),
        {"A": ImplementedBinding(impl, tuple(b.name for b in banks))},
    )


def check(impl_cls, scripts, seed):
    impl = impl_cls(Params(components=COMPONENTS, n=N))
    protocol = SnapshotScript(scripts, components=COMPONENTS)
    system = System(protocol, workloads=[[0]] * N, layout=layout_for(impl))
    execution = run(system, RandomScheduler(seed=seed), max_steps=100_000)
    history = extract_history(execution, scripts)
    assert len(history) == sum(len(s) for s in scripts)
    assert check_linearizable(history, components=COMPONENTS) is not None


class TestSubstrateLinearizability:
    @given(scripts_strategy(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_double_collect(self, scripts, seed):
        check(DoubleCollectSnapshot, scripts, seed)

    @given(scripts_strategy(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_wait_free(self, scripts, seed):
        check(WaitFreeSnapshot, scripts, seed)

    @given(scripts_strategy(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_single_writer(self, scripts, seed):
        check(SingleWriterSnapshot, scripts, seed)

    @given(scripts_strategy(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_atomic_reference(self, scripts, seed):
        """The primitive snapshot trivially linearizes — this pins the
        harness + checker pipeline itself."""
        protocol = SnapshotScript(scripts, components=COMPONENTS)
        system = System(protocol, workloads=[[0]] * N)
        execution = run(system, RandomScheduler(seed=seed), max_steps=10_000)
        history = extract_history(execution, scripts)
        assert check_linearizable(history, components=COMPONENTS) is not None
