"""Hypothesis: scheduler laws that every adversary must obey."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CrashScheduler,
    OneShotSetAgreement,
    RandomScheduler,
    RoundRobinScheduler,
    System,
    run,
)
from repro.bench.workloads import distinct_inputs
from repro.sched import CyclicScheduler, EventuallyBoundedScheduler

seeds = st.integers(min_value=0, max_value=50_000)
sizes = st.integers(min_value=2, max_value=6)


def system_of(n):
    return System(OneShotSetAgreement(n=n, m=1, k=n - 1),
                  workloads=distinct_inputs(n))


class TestSchedulerLaws:
    @given(sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_chosen_pids_always_enabled(self, n, seed):
        """The runner enforces it, so a completed run is the proof."""
        execution = run(system_of(n), RandomScheduler(seed=seed),
                        max_steps=400, on_limit="return")
        assert all(0 <= pid < n for pid in execution.schedule)

    @given(sizes, seeds, st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_bounded_tail_only_survivors(self, n, seed, prelude):
        survivor = seed % n
        scheduler = EventuallyBoundedScheduler(
            survivors=[survivor], prelude_steps=prelude,
            prelude=RandomScheduler(seed=seed),
        )
        execution = run(system_of(n), scheduler, max_steps=100_000)
        assert set(execution.schedule[prelude:]) <= {survivor}

    @given(sizes, seeds, st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_crashed_never_step_after_crash(self, n, seed, crash_at):
        crashed = seed % n
        scheduler = CrashScheduler(
            crashes={crashed: crash_at}, base=RandomScheduler(seed=seed)
        )
        execution = run(system_of(n), scheduler, max_steps=600,
                        on_limit="return")
        for index, pid in enumerate(execution.schedule):
            if pid == crashed:
                assert index < crash_at

    @given(sizes)
    @settings(max_examples=15, deadline=None)
    def test_round_robin_fair_prefix(self, n):
        execution = run(system_of(n), RoundRobinScheduler(), max_steps=n * 3,
                        on_limit="return")
        prefix = execution.schedule[: n * 2]
        for pid in range(n):
            assert prefix.count(pid) >= 1

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                    max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_cyclic_follows_pattern_while_all_enabled(self, pattern):
        execution = run(system_of(3), CyclicScheduler(pattern),
                        max_steps=len(pattern), on_limit="return")
        assert execution.schedule == list(pattern)[: execution.steps]
