"""Hypothesis properties of the trace tooling."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OneShotSetAgreement, RandomScheduler, System, run
from repro.bench.workloads import distinct_inputs
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent
from repro.trace import execution_to_jsonl, space_time_diagram
from repro.trace.diagram import register_timeline

seeds = st.integers(min_value=0, max_value=5_000)
sizes = st.sampled_from([(2, 1, 1), (3, 1, 2), (4, 2, 3)])
budgets = st.integers(min_value=1, max_value=300)


def execution_of(point, seed, budget):
    n, m, k = point
    system = System(OneShotSetAgreement(n=n, m=m, k=k),
                    workloads=distinct_inputs(n))
    return run(system, RandomScheduler(seed=seed), max_steps=budget,
               on_limit="return")


class TestDiagramProperties:
    @given(sizes, seeds, budgets)
    @settings(max_examples=25, deadline=None)
    def test_glyph_counts_match_event_counts(self, point, seed, budget):
        execution = execution_of(point, seed, budget)
        diagram = space_time_diagram(execution)
        body = "".join(
            line.split(None, 1)[1] if " " in line else ""
            for line in diagram.splitlines()
            if line.startswith("p")
        )
        invokes = sum(isinstance(e, InvokeEvent) for e in execution.events)
        decides = sum(isinstance(e, DecideEvent) for e in execution.events)
        assert body.count("I") == invokes
        assert body.count("D") == decides

    @given(sizes, seeds, budgets)
    @settings(max_examples=25, deadline=None)
    def test_each_column_has_exactly_one_glyph(self, point, seed, budget):
        execution = execution_of(point, seed, budget)
        diagram = space_time_diagram(execution)
        lanes = [
            line.split(None, 1)[1]
            for line in diagram.splitlines()
            if line.startswith("p") and " " in line
        ]
        if not lanes or not execution.events:
            return
        for column in range(len(execution.events)):
            glyphs = [lane[column] for lane in lanes if lane[column] != "."]
            assert len(glyphs) == 1

    @given(sizes, seeds, budgets)
    @settings(max_examples=20, deadline=None)
    def test_timeline_mentions_every_written_register(self, point, seed, budget):
        from repro.memory.ops import is_write_access
        from repro.spec.stats import registers_written

        execution = execution_of(point, seed, budget)
        timeline = register_timeline(execution)
        for coord in registers_written(execution):
            assert str(coord) in timeline


class TestJsonlProperties:
    @given(sizes, seeds, budgets)
    @settings(max_examples=20, deadline=None)
    def test_jsonl_is_valid_and_complete(self, point, seed, budget):
        execution = execution_of(point, seed, budget)
        lines = execution_to_jsonl(execution).splitlines()
        if not execution.events:
            assert lines == [""] or lines == []
            return
        assert len(lines) == len(execution.events)
        for index, line in enumerate(lines):
            record = json.loads(line)
            assert record["step"] == index
            assert record["pid"] == execution.events[index].pid
            assert record["kind"] == execution.events[index].kind
