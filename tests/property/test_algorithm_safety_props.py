"""Hypothesis: safety invariants of all algorithms under random adversaries.

Safety must hold in every execution; hypothesis drives randomized
interleavings, parameter points, workload shapes, and crash patterns, and
the checkers act as the invariant.  Shrinking gives minimal failing
schedules for free if anything regresses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CrashScheduler,
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    System,
    run,
)
from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousRepeatedSetAgreement,
)
from repro.agreement.commit_adopt import CommitAdoptConsensus
from repro.bench.workloads import clustered_inputs, distinct_inputs
from repro.spec import check_safety

points = st.sampled_from(
    [(2, 1, 1), (3, 1, 1), (3, 1, 2), (4, 1, 2), (4, 2, 2), (4, 2, 3),
     (5, 2, 3), (5, 1, 4)]
)
seeds = st.integers(min_value=0, max_value=100_000)
budgets = st.integers(min_value=0, max_value=1_500)


def assert_safe(system, k, seed, budget):
    execution = run(system, RandomScheduler(seed=seed), max_steps=budget,
                    on_limit="return")
    violations = check_safety(execution, k)
    assert not violations, [str(v) for v in violations]


class TestOneShot:
    @given(points, seeds, budgets)
    @settings(max_examples=60, deadline=None)
    def test_figure3_safety(self, point, seed, budget):
        n, m, k = point
        system = System(OneShotSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n))
        assert_safe(system, k, seed, budget)

    @given(points, seeds, budgets, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_figure3_safety_clustered_inputs(self, point, seed, budget, c):
        n, m, k = point
        system = System(OneShotSetAgreement(n=n, m=m, k=k),
                        workloads=clustered_inputs(n, clusters=c))
        assert_safe(system, k, seed, budget)


class TestRepeated:
    @given(points, seeds, budgets)
    @settings(max_examples=50, deadline=None)
    def test_figure4_safety(self, point, seed, budget):
        n, m, k = point
        system = System(RepeatedSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n, instances=3))
        assert_safe(system, k, seed, budget)

    @given(points, seeds, budgets)
    @settings(max_examples=30, deadline=None)
    def test_figure4_safety_under_crashes(self, point, seed, budget):
        n, m, k = point
        system = System(RepeatedSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n, instances=2))
        scheduler = CrashScheduler(
            crashes={seed % n: seed % 50}, base=RandomScheduler(seed=seed)
        )
        execution = run(system, scheduler, max_steps=budget, on_limit="return")
        assert not check_safety(execution, k)


class TestAnonymous:
    @given(points, seeds, budgets)
    @settings(max_examples=40, deadline=None)
    def test_figure5_safety(self, point, seed, budget):
        n, m, k = point
        system = System(AnonymousRepeatedSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n, instances=2))
        assert_safe(system, k, seed, budget)

    @given(points, seeds, budgets)
    @settings(max_examples=40, deadline=None)
    def test_anonymous_oneshot_safety(self, point, seed, budget):
        n, m, k = point
        system = System(AnonymousOneShotSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n))
        assert_safe(system, k, seed, budget)


class TestCommitAdopt:
    @given(st.integers(min_value=2, max_value=5), seeds, budgets)
    @settings(max_examples=40, deadline=None)
    def test_commit_adopt_safety(self, n, seed, budget):
        system = System(CommitAdoptConsensus(n), workloads=distinct_inputs(n))
        assert_safe(system, 1, seed, budget)


class TestValidityIsByConstruction:
    @given(points, seeds, budgets)
    @settings(max_examples=30, deadline=None)
    def test_outputs_traceable_to_inputs(self, point, seed, budget):
        """Stronger than per-instance validity: every output of every
        process equals some process's input for that same instance."""
        n, m, k = point
        workloads = distinct_inputs(n, instances=2)
        system = System(RepeatedSetAgreement(n=n, m=m, k=k),
                        workloads=workloads)
        execution = run(system, RandomScheduler(seed=seed),
                        max_steps=budget, on_limit="return")
        for pid, proc in enumerate(execution.config.procs):
            for instance, output in enumerate(proc.outputs, start=1):
                valid = {w[instance - 1] for w in workloads}
                assert output in valid
