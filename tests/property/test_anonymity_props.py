"""Hypothesis: anonymity means clone-indistinguishability.

Section 5's whole machinery rests on one semantic fact: in an anonymous
algorithm, a *clone* (same input, scheduled in lockstep right behind a
process) evolves through exactly the same local states and issues exactly
the same operations.  These properties verify that fact mechanically for
the anonymous automata — and verify its *failure* for the identifier-based
ones (whose entries embed pids), which is what makes the clone argument
specific to the anonymous setting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System
from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousRepeatedSetAgreement,
)
from repro.agreement.oneshot import OneShotSetAgreement

seeds = st.integers(min_value=0, max_value=10_000)
lengths = st.integers(min_value=1, max_value=120)


def lockstep_states(system, leader, clone, steps):
    """Run leader and clone in lockstep; return their state pairs."""
    config = system.initial_configuration()
    pairs = []
    for _ in range(steps):
        if not system.enabled(config, leader):
            break
        config = system.step(config, leader).config
        config = system.step(config, clone).config
        pairs.append((config.procs[leader], config.procs[clone]))
    return pairs


def states_equal(a, b):
    """Local equality modulo the output bookkeeping the runtime adds."""
    return (
        a.persistent == b.persistent
        and a.active == b.active
        and a.outputs == b.outputs
    )


class TestAnonymousCloneIndistinguishability:
    @given(lengths)
    @settings(max_examples=20, deadline=None)
    def test_oneshot_clone_shadows_exactly(self, steps):
        protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=2, components=3)
        system = System(protocol, workloads=[["v"], ["v"], ["x"], ["y"]])
        for leader_state, clone_state in lockstep_states(system, 0, 1, steps):
            assert states_equal(leader_state, clone_state)

    @given(lengths)
    @settings(max_examples=20, deadline=None)
    def test_repeated_clone_shadows_exactly(self, steps):
        protocol = AnonymousRepeatedSetAgreement(n=4, m=1, k=2)
        system = System(
            protocol, workloads=[["v", "w"], ["v", "w"], ["x", "x2"],
                                 ["y", "y2"]]
        )
        for leader_state, clone_state in lockstep_states(system, 0, 1, steps):
            assert states_equal(leader_state, clone_state)

    @given(st.integers(min_value=4, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_identifier_based_algorithm_leaks_identity(self, steps):
        """Figure 3 embeds pids in its entries: after a leader/clone pair
        has written, the shared memory itself distinguishes them — the
        clone's identifier is visible.  (The anonymous algorithms leave no
        such trace, which is what the clone lower bound exploits.)"""
        from repro._types import is_bot

        protocol = OneShotSetAgreement(n=4, m=1, k=2)
        system = System(protocol, workloads=[["v"], ["v"], ["x"], ["y"]])
        config = system.initial_configuration()
        for _ in range(steps):
            if not system.enabled(config, 0):
                break
            config = system.step(config, 0).config
            config = system.step(config, 1).config
        ids_in_memory = {
            entry[1]
            for entry in config.memory[0]
            if not is_bot(entry)
        }
        if len([e for e in config.memory[0] if not is_bot(e)]) >= 1:
            # the most recent writer of the shared component is the clone
            assert 1 in ids_in_memory

    @given(st.integers(min_value=6, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_anonymous_algorithm_leaves_no_identity_trace(self, steps):
        """Converse: after a lockstep anonymous leader/clone pair ran, the
        memory state is exactly what the leader running the same ops alone
        twice... i.e. entries carry no process-distinguishing field."""
        protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=2, components=3)
        system = System(protocol, workloads=[["v"], ["v"], ["x"], ["y"]])
        config = system.initial_configuration()
        for _ in range(steps):
            if not system.enabled(config, 0):
                break
            config = system.step(config, 0).config
            config = system.step(config, 1).config
        from repro._types import is_bot

        for entry in config.memory[0]:
            assert is_bot(entry) or entry == "v"  # bare values, no ids

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_clone_pair_decides_identically(self, seed):
        """Two anonymous clones that run to completion in lockstep output
        the same value for every instance."""
        protocol = AnonymousOneShotSetAgreement(n=4, m=2, k=3)
        system = System(protocol, workloads=[["v"], ["v"], ["x"], ["y"]])
        config = system.initial_configuration()
        guard = 0
        while (system.enabled(config, 0) or system.enabled(config, 1)):
            for pid in (0, 1):
                if system.enabled(config, pid):
                    config = system.step(config, pid).config
            guard += 1
            assert guard < 10_000
        assert config.procs[0].outputs == config.procs[1].outputs
